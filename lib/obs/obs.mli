(** I/O tracing: typed events, pluggable sinks, operation spans.

    The paper's guarantees are worst-case {e per-query} I/O bounds, but
    aggregate counters ({!Pc_pagestore.Io_stats}) only expose means. This
    module records the full event sequence — which pages an operation
    touched, in what order, attributed to the span (query, insert, build)
    that caused them — so distributions and worst cases become observable
    (see DESIGN.md §9).

    Events are stamped with a {e logical tick}, a monotonically increasing
    counter, never a wall clock: traces of a fixed seed are deterministic
    and can be compared byte-for-byte in tests.

    The overhead contract: with no handle ([?obs] absent) or with the
    {!null} sink installed, instrumented code paths reduce to a single
    match on an option/variant — I/O counts are byte-identical and timing
    is unchanged. Tracing is strictly opt-in. *)

(** Event taxonomy. [Read]..[Pin] fire at the {!Pc_pagestore.Pager} and
    {!Pc_bufferpool.Buffer_pool} counter sites; [Span_begin]/[Span_end]
    bracket structure entry points. *)
type kind =
  | Read  (** page miss serviced by the simulated disk *)
  | Write  (** page write charged immediately (write-through) *)
  | Alloc  (** fresh page allocated *)
  | Free  (** page released *)
  | Cache_hit  (** access absorbed by the buffer pool *)
  | Evict  (** frame pushed out of the buffer pool *)
  | Write_back  (** deferred write charged at eviction or flush *)
  | Pin  (** frame pinned resident *)
  | Fault
      (** a device error injected by a {!Pc_pagestore.Fault_plan} — one
          event per failed transfer attempt, tagged with the page, so a
          trace shows exactly where the fault landed *)
  | Retry
      (** a transient read burst the pager absorbed in place: one event
          per burst, after the failed attempts' [Fault] events *)
  | Journal_write
      (** a page journaled at commit by the durability layer
          ({!Pc_pagestore.Wal}); a device write, counted as such by
          {!replay_channel} *)
  | Checkpoint
      (** a superblock write truncating the journal; a device write *)
  | Corrupt
      (** a checksum mismatch quarantined in degraded mode — reads of
          this page now return nothing and results are marked partial *)
  | Span_begin
  | Span_end

type event = {
  tick : int;  (** logical timestamp, unique and monotonic per handle *)
  kind : kind;
  src : int;  (** registered source (pager) id; [-1] for span events *)
  page : int;  (** page id; span id for span events *)
  label : string;  (** span kind, e.g. ["query2sided"]; [""] otherwise *)
  args : (string * int) list;
      (** [Span_end] payload: the query's {!Pc_pagestore.Query_stats}
          breakdown; [[]] otherwise *)
}

val kind_name : kind -> string
val kind_of_name : string -> kind option

(** {1 Sinks} *)

type sink

(** [null] drops every event; the default. A handle whose sink is [null]
    is disabled: no ticks advance, no allocation happens per event. *)
val null : sink

(** [ring ~capacity] keeps the most recent [capacity] events in memory;
    read them back with {!events}. *)
val ring : capacity:int -> sink

(** [jsonl oc] writes one JSON object per event per line. *)
val jsonl : out_channel -> sink

(** [chrome oc] writes the Chrome [trace_event] JSON-array format: open
    the file in [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}. Spans render as nested duration slices, I/O events as
    instants on one lane per pager. {!close} writes the closing bracket. *)
val chrome : out_channel -> sink

(** [custom f] calls [f] on every event. *)
val custom : (event -> unit) -> sink

(** [tee a b] delivers every event to both [a] and [b]; flush and close
    fan out, {!events} reads [a]'s buffer. {!null} operands collapse
    away ([tee null s] is [s]), so teeing onto a disabled handle's sink
    yields just the new sink. Used by {!Metrics.attach} to listen beside
    an installed trace sink. *)
val tee : sink -> sink -> sink

(** {1 Handles} *)

type t

(** [create ()] makes a handle, disabled by default ([?sink] = {!null}). *)
val create : ?sink:sink -> unit -> t

val set_sink : t -> sink -> unit

(** [current_sink t] is the installed sink ({!null} when disabled). *)
val current_sink : t -> sink

(** [enabled t] is [false] iff the sink is {!null}. *)
val enabled : t -> bool

(** [tick t] is the next logical timestamp. *)
val tick : t -> int

(** [to_file path] opens a file sink, choosing the format by extension:
    [.json] gets the Chrome format, anything else JSONL. {!close} closes
    the file. *)
val to_file : string -> t

(** [flush t] flushes a file-backed sink. *)
val flush : t -> unit

(** [close t] finalizes the sink (writes the Chrome closing bracket,
    closes a {!to_file} channel) and installs {!null}. *)
val close : t -> unit

(** {1 Sources and events} *)

(** An event source registered on a handle — one per pager. Cheap to
    carry; {!emit} through it is the hot path. *)
type source

(** [register t ~name] allocates the next source id. *)
val register : t -> name:string -> source

val source_id : source -> int
val source_name : t -> int -> string option

(** [emit src kind ~page] appends one event, stamping the next tick.
    No-op (no tick consumed) when the sink is {!null}. *)
val emit : source -> kind -> page:int -> unit

(** [events t] returns the buffered events of a {!ring} sink, oldest
    first; [[]] for any other sink. *)
val events : t -> event list

(** {1 Spans} *)

(** [with_span obs ~kind f] brackets [f ()] between [Span_begin] and
    [Span_end] events so the I/O events [f] causes nest under it.
    [result_args], evaluated on [f]'s result, attaches a stats breakdown
    to the closing event. If [f] raises, the span is closed with
    [[("error", 1)]] and the exception re-raised. [with_span None ~kind f]
    is exactly [f ()]. *)
val with_span :
  t option ->
  kind:string ->
  ?result_args:('a -> (string * int) list) ->
  (unit -> 'a) ->
  'a

(** [span_depth t] is the current nesting depth (0 outside any span). *)
val span_depth : t -> int

(** {1 Replay}

    Reads a JSONL trace back into I/O totals, so a trace can be checked
    against the counters it mirrors. Raises [Failure] with the offending
    line number on input that is not a trace written by the {!jsonl}
    sink. *)

type totals = {
  t_reads : int;
  t_writes : int;  (** immediate writes plus write-backs, as {!Pc_pagestore.Io_stats.writes} *)
  t_cache_hits : int;
  t_allocs : int;
  t_frees : int;
  t_evictions : int;
  t_write_backs : int;
  t_spans : int;  (** number of [Span_begin] events *)
  t_events : int;  (** total events parsed *)
}

val zero_totals : totals
val replay_channel : in_channel -> totals
val replay_file : string -> totals
val pp_totals : Format.formatter -> totals -> unit

(** {1 Profiling}

    Aggregates a JSONL trace into a per-span-label table — the "where do
    the I/Os go" view. I/O attribution is inclusive, matching the
    {!Pc_pagestore.Pager.with_counted} contract: an event inside nested
    spans counts toward every open span. Raises [Failure] with the
    offending line number on malformed input or broken span nesting;
    spans left open by a truncated trace are dropped. *)

module Profile : sig
  type row = {
    label : string;  (** span label, e.g. ["query.2sided"] *)
    count : int;  (** spans closed with this label *)
    total_ios : int;  (** reads + writes (incl. write-backs) inside them *)
    mean : float;  (** [total_ios / count] *)
    p99 : int;  (** per-span I/O p99 (log-bucketed) *)
    max : int;  (** worst single span *)
  }

  (** Rows sorted by decreasing [total_ios]. *)
  val of_channel : in_channel -> row list

  val of_file : string -> row list
  val pp : Format.formatter -> row list -> unit
end
