(* Per-structure access profiles + the frame-budget advisor. See the
   mli for the model; the code below is bookkeeping around Reuse_dist.

   Levels: a global touch ordinal, reset at every Span_begin, indexes
   the per-source (hits, misses) tables. Spans carry src = -1, so the
   ordinal is per-handle, not per-source — correct for the common case
   of one structure querying at a time, and documented as approximate
   elsewhere. Depths are clamped into the last bucket beyond max_depth
   so a scan inside a span cannot grow the table without bound. *)

let max_depth = 32

type src_state = {
  mutable ap_reads : int;
  mutable ap_hits : int;
  d_hits : int array; (* per-depth Cache_hit touches *)
  d_misses : int array; (* per-depth Read touches *)
  touches : (int, int) Hashtbl.t; (* page -> touch count *)
  (* sliding-window working set: ring of the last [window] pages with a
     multiset of their counts; ws = cardinality of the multiset *)
  ring : int array;
  mutable ring_len : int; (* filled slots, < window until warm *)
  mutable ring_pos : int;
  in_window : (int, int) Hashtbl.t;
  mutable ws_peak : int;
}

type t = {
  rd : Reuse_dist.t;
  window : int;
  top_k : int;
  srcs : (int, src_state) Hashtbl.t;
  mutable depth : int; (* touch ordinal within the innermost open span *)
  mutable resolve : int -> string option;
}

let create ?(window = 256) ?(top_k = 8) () =
  if window <= 0 then invalid_arg "Access_profile.create: window <= 0";
  {
    rd = Reuse_dist.create ();
    window;
    top_k;
    srcs = Hashtbl.create 8;
    depth = 0;
    resolve = (fun _ -> None);
  }

let reuse t = t.rd

let state t src =
  match Hashtbl.find_opt t.srcs src with
  | Some s -> s
  | None ->
      let s =
        {
          ap_reads = 0;
          ap_hits = 0;
          d_hits = Array.make max_depth 0;
          d_misses = Array.make max_depth 0;
          touches = Hashtbl.create 64;
          ring = Array.make t.window 0;
          ring_len = 0;
          ring_pos = 0;
          in_window = Hashtbl.create 64;
          ws_peak = 0;
        }
      in
      Hashtbl.replace t.srcs src s;
      s

let bump tbl page delta =
  let cur = Option.value ~default:0 (Hashtbl.find_opt tbl page) in
  let next = cur + delta in
  if next <= 0 then Hashtbl.remove tbl page else Hashtbl.replace tbl page next

let slide s page =
  if s.ring_len = Array.length s.ring then
    bump s.in_window s.ring.(s.ring_pos) (-1)
  else s.ring_len <- s.ring_len + 1;
  s.ring.(s.ring_pos) <- page;
  s.ring_pos <- (s.ring_pos + 1) mod Array.length s.ring;
  bump s.in_window page 1;
  let ws = Hashtbl.length s.in_window in
  if ws > s.ws_peak then s.ws_peak <- ws

let touch t s page ~hit =
  s.ap_reads <- s.ap_reads + 1;
  if hit then s.ap_hits <- s.ap_hits + 1;
  let d = min t.depth (max_depth - 1) in
  let arr = if hit then s.d_hits else s.d_misses in
  arr.(d) <- arr.(d) + 1;
  t.depth <- t.depth + 1;
  bump s.touches page 1;
  slide s page

(* The table half of the fold — Reuse_dist keeps its own stack state. *)
let profile_observe t (e : Obs.event) =
  match e.Obs.kind with
  | Obs.Span_begin -> t.depth <- 0
  | Obs.Cache_hit -> touch t (state t e.Obs.src) e.Obs.page ~hit:true
  | Obs.Read -> touch t (state t e.Obs.src) e.Obs.page ~hit:false
  | _ -> ()

let observe t (e : Obs.event) =
  Reuse_dist.observe t.rd e;
  profile_observe t e

let sink t = Obs.custom (observe t)

let attach t obs =
  t.resolve <- Obs.source_name obs;
  (* Reuse_dist.attach tees its own listener (and takes the handle's
     name resolver); we tee only the table half beside it. *)
  Reuse_dist.attach t.rd obs;
  Obs.set_sink obs
    (Obs.tee (Obs.current_sink obs) (Obs.custom (profile_observe t)))

let reset t =
  Reuse_dist.reset t.rd;
  Hashtbl.reset t.srcs;
  t.depth <- 0

(* ------------------------------------------------------------------ *)
(* Profiles                                                           *)
(* ------------------------------------------------------------------ *)

type level = { lv_depth : int; lv_hits : int; lv_misses : int }

type profile = {
  p_source : string;
  p_reads : int;
  p_hits : int;
  p_distinct : int;
  p_levels : level list;
  p_hot : (int * int) list;
  p_ws_current : int;
  p_ws_peak : int;
}

let source_label t i =
  match t.resolve i with Some n -> n | None -> Printf.sprintf "src%d" i

let hot_pages t s =
  Hashtbl.fold (fun page n acc -> (page, n) :: acc) s.touches []
  |> List.sort (fun (p1, n1) (p2, n2) ->
         match compare n2 n1 with 0 -> compare p1 p2 | c -> c)
  |> List.filteri (fun i _ -> i < t.top_k)

let profile_of t i s =
  let levels = ref [] in
  for d = max_depth - 1 downto 0 do
    if s.d_hits.(d) > 0 || s.d_misses.(d) > 0 then
      levels :=
        { lv_depth = d; lv_hits = s.d_hits.(d); lv_misses = s.d_misses.(d) }
        :: !levels
  done;
  {
    p_source = source_label t i;
    p_reads = s.ap_reads;
    p_hits = s.ap_hits;
    p_distinct =
      (match Reuse_dist.mrc t.rd i with
      | Some m -> Reuse_dist.distinct m
      | None -> Hashtbl.length s.touches);
    p_levels = !levels;
    p_hot = hot_pages t s;
    p_ws_current = Hashtbl.length s.in_window;
    p_ws_peak = s.ws_peak;
  }

let profiles t =
  Hashtbl.fold (fun i s acc -> (i, s) :: acc) t.srcs []
  |> List.sort compare
  |> List.map (fun (i, s) -> profile_of t i s)

let working_set t src =
  match Hashtbl.find_opt t.srcs src with
  | Some s -> Hashtbl.length s.in_window
  | None -> 0

let pp_profiles ppf ps =
  List.iter
    (fun p ->
      Format.fprintf ppf "%s: reads=%d hits=%d distinct=%d ws=%d peak-ws=%d@\n"
        p.p_source p.p_reads p.p_hits p.p_distinct p.p_ws_current p.p_ws_peak;
      if p.p_levels <> [] then begin
        Format.fprintf ppf "  %-6s %10s %10s %6s@\n" "level" "hits" "misses"
          "hit%";
        List.iter
          (fun lv ->
            let tot = lv.lv_hits + lv.lv_misses in
            Format.fprintf ppf "  %-6d %10d %10d %6.1f@\n" lv.lv_depth
              lv.lv_hits lv.lv_misses
              (if tot = 0 then 0. else 100. *. float lv.lv_hits /. float tot))
          p.p_levels
      end;
      if p.p_hot <> [] then begin
        Format.fprintf ppf "  hot:";
        List.iter
          (fun (page, n) -> Format.fprintf ppf " %d(%d)" page n)
          p.p_hot;
        Format.fprintf ppf "@\n"
      end)
    ps

let profiles_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"profiles\": [";
  List.iteri
    (fun i p ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"source\": %S, \"reads\": %d, \"hits\": %d, \"distinct\": \
            %d, \"working_set\": %d, \"working_set_peak\": %d, \"levels\": ["
           p.p_source p.p_reads p.p_hits p.p_distinct p.p_ws_current
           p.p_ws_peak);
      List.iteri
        (fun j lv ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "{\"depth\": %d, \"hits\": %d, \"misses\": %d}"
               lv.lv_depth lv.lv_hits lv.lv_misses))
        p.p_levels;
      Buffer.add_string buf "], \"hot_pages\": [";
      List.iteri
        (fun j (page, n) ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "{\"page\": %d, \"touches\": %d}" page n))
        p.p_hot;
      Buffer.add_string buf "]}")
    (profiles t);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* The advisor                                                        *)
(* ------------------------------------------------------------------ *)

type alloc = {
  a_source : string;
  a_frames : int;
  a_accesses : int;
  a_pred_hits : int;
}

let alloc_hit_ratio a =
  if a.a_accesses = 0 then 0.
  else float a.a_pred_hits /. float a.a_accesses

type advice = { budget : int; allocs : alloc list; even : alloc list }

let predicted_misses allocs =
  List.fold_left (fun acc a -> acc + a.a_accesses - a.a_pred_hits) 0 allocs

let mk_allocs curves frames =
  List.map2
    (fun (name, m) f ->
      {
        a_source = name;
        a_frames = f;
        a_accesses = Reuse_dist.accesses m;
        a_pred_hits = Reuse_dist.hits_at m f;
      })
    curves frames

(* Even split with the remainder handed out left to right. *)
let even_frames n budget =
  List.init n (fun i -> (budget / n) + if i < budget mod n then 1 else 0)

let advise curves ~budget =
  if budget < 0 then invalid_arg "Access_profile.advise: negative budget";
  let n = List.length curves in
  if n = 0 then invalid_arg "Access_profile.advise: no curves";
  let arr = Array.of_list curves in
  let frames = Array.make n 0 in
  (* Greedy marginal-miss-rate descent: each frame goes to the curve
     with the largest hit gain from its next frame. Ties break to the
     curve with fewer frames so equal curves split evenly, then to
     source order for determinism. Frames beyond every curve's flat
     point gain nothing; they are spread round-robin so the split still
     sums to the budget. *)
  let gain i =
    let _, m = arr.(i) in
    Reuse_dist.hits_at m (frames.(i) + 1) - Reuse_dist.hits_at m frames.(i)
  in
  for _ = 1 to budget do
    let best = ref 0 in
    for i = 1 to n - 1 do
      let g = gain i and gb = gain !best in
      if g > gb || (g = gb && frames.(i) < frames.(!best)) then best := i
    done;
    frames.(!best) <- frames.(!best) + 1
  done;
  let greedy = mk_allocs curves (Array.to_list frames) in
  let even = mk_allocs curves (even_frames n budget) in
  (* Greedy is optimal when the curves are concave; on a non-concave
     curve it can lose to even, in which case recommend even. *)
  let allocs =
    if predicted_misses greedy <= predicted_misses even then greedy else even
  in
  { budget; allocs; even }

let pp_advice ppf a =
  let w =
    List.fold_left
      (fun acc al -> max acc (String.length al.a_source))
      8 a.allocs
  in
  Format.fprintf ppf "budget: %d frames@\n" a.budget;
  Format.fprintf ppf "%-*s %8s %10s %10s %6s@\n" w "source" "frames"
    "accesses" "pred-miss" "hit%";
  List.iter
    (fun al ->
      Format.fprintf ppf "%-*s %8d %10d %10d %6.1f@\n" w al.a_source
        al.a_frames al.a_accesses
        (al.a_accesses - al.a_pred_hits)
        (100. *. alloc_hit_ratio al))
    a.allocs;
  let rec_m = predicted_misses a.allocs
  and even_m = predicted_misses a.even in
  Format.fprintf ppf
    "predicted misses: recommended=%d even-split=%d (delta %+d)@\n" rec_m
    even_m (rec_m - even_m)

let advice_json a =
  let buf = Buffer.create 512 in
  let allocs_json allocs =
    String.concat ","
      (List.map
         (fun al ->
           Printf.sprintf
             "\n    {\"source\": %S, \"frames\": %d, \"accesses\": %d, \
              \"predicted_hits\": %d, \"predicted_hit_ratio\": %.6f}"
             al.a_source al.a_frames al.a_accesses al.a_pred_hits
             (alloc_hit_ratio al))
         allocs)
  in
  Buffer.add_string buf (Printf.sprintf "{\n  \"budget\": %d," a.budget);
  Buffer.add_string buf
    (Printf.sprintf "\n  \"recommended\": [%s],"  (allocs_json a.allocs));
  Buffer.add_string buf
    (Printf.sprintf "\n  \"even_split\": [%s]," (allocs_json a.even));
  Buffer.add_string buf
    (Printf.sprintf
       "\n  \"predicted_misses\": {\"recommended\": %d, \"even\": %d}\n}\n"
       (predicted_misses a.allocs)
       (predicted_misses a.even));
  Buffer.contents buf
