(* Exact reuse-distance profiling over the Obs event stream.

   The shadow stack is the textbook Mattson structure made O(log n): we
   never materialize the LRU list. Each page carries the timestamp of
   its most recent reference, and a Fenwick (binary-indexed) tree over
   timestamp slots holds a 1 for every slot that is some page's current
   timestamp. The reuse distance of a reference to [p] is then the
   number of set slots above [p]'s old timestamp — pages referenced
   since [p] last was — which is two prefix sums. Timestamps grow with
   the trace, so when the slot array fills and most slots are stale
   (dead 0s left behind by re-references) we renumber the live pages in
   timestamp order and rebuild; the rebuild is O(live log live) and
   happens at most every O(live) references, keeping the amortized cost
   logarithmic and the memory proportional to live pages, not trace
   length — a profiler left attached to a long-lived server stays
   bounded. *)

module Stack = struct
  type t = {
    mutable bit : int array; (* 1-based Fenwick over timestamp slots *)
    mutable cap : int; (* slots available *)
    mutable time : int; (* next timestamp (slots used so far) *)
    last : (int, int) Hashtbl.t; (* page -> current timestamp *)
  }

  let initial_cap = 64

  let create () =
    {
      bit = Array.make (initial_cap + 1) 0;
      cap = initial_cap;
      time = 0;
      last = Hashtbl.create 64;
    }

  let size t = Hashtbl.length t.last

  (* Fenwick primitives: slot for timestamp [ts] is [ts + 1]. *)
  let bit_add t i delta =
    let i = ref (i + 1) in
    while !i <= t.cap do
      t.bit.(!i) <- t.bit.(!i) + delta;
      i := !i + (!i land - !i)
    done

  (* set slots with timestamp <= ts *)
  let bit_prefix t ts =
    let i = ref (ts + 1) and s = ref 0 in
    while !i > 0 do
      s := !s + t.bit.(!i);
      i := !i - (!i land - !i)
    done;
    !s

  (* Renumber live pages 0..live-1 in timestamp order and rebuild the
     tree over a capacity that leaves headroom, or grow when the slots
     are mostly live. *)
  let compact t =
    let live = size t in
    let pages =
      Hashtbl.fold (fun page ts acc -> (ts, page) :: acc) t.last []
      |> List.sort compare
    in
    let cap = max initial_cap (4 * max 1 live) in
    t.cap <- cap;
    t.bit <- Array.make (cap + 1) 0;
    t.time <- 0;
    List.iter
      (fun (_, page) ->
        Hashtbl.replace t.last page t.time;
        bit_add t t.time 1;
        t.time <- t.time + 1)
      pages

  let access t page =
    if t.time >= t.cap then compact t;
    let dist =
      match Hashtbl.find_opt t.last page with
      | None -> None
      | Some old ->
          (* distinct pages referenced since [page]'s last reference =
             set slots strictly above its old timestamp *)
          let above = bit_prefix t (t.time - 1) - bit_prefix t old in
          bit_add t old (-1);
          Some above
    in
    Hashtbl.replace t.last page t.time;
    bit_add t t.time 1;
    t.time <- t.time + 1;
    dist

  let forget t page =
    match Hashtbl.find_opt t.last page with
    | None -> ()
    | Some ts ->
        bit_add t ts (-1);
        Hashtbl.remove t.last page
end

(* ------------------------------------------------------------------ *)
(* Miss-ratio curves                                                  *)
(* ------------------------------------------------------------------ *)

type mrc = {
  m_accesses : int;
  m_cold : int;
  m_distinct : int;
  m_hits : int array;
      (* m_hits.(c) = read references with distance < c, i.e. exact LRU
         hits at capacity c; length flat_at + 1, m_hits.(0) = 0 *)
}

let accesses m = m.m_accesses
let cold m = m.m_cold
let distinct m = m.m_distinct
let flat_at m = Array.length m.m_hits - 1

let hits_at m c =
  if c <= 0 then 0
  else m.m_hits.(min c (Array.length m.m_hits - 1))

let hit_ratio m c =
  if m.m_accesses = 0 then 0.
  else float_of_int (hits_at m c) /. float_of_int m.m_accesses

let miss_ratio m c = 1. -. hit_ratio m c

(* ------------------------------------------------------------------ *)
(* The profiler                                                       *)
(* ------------------------------------------------------------------ *)

type src_state = {
  stack : Stack.t;
  mutable hist : int array; (* hist.(d) = read references at distance d *)
  mutable max_d : int; (* largest finite distance seen, -1 if none *)
  mutable s_cold : int;
  mutable s_reads : int;
  mutable s_writes : int;
}

type t = {
  srcs : (int, src_state) Hashtbl.t;
  mutable resolve : int -> string option;
}

let create () = { srcs = Hashtbl.create 8; resolve = (fun _ -> None) }

let state t src =
  match Hashtbl.find_opt t.srcs src with
  | Some s -> s
  | None ->
      let s =
        {
          stack = Stack.create ();
          hist = Array.make 64 0;
          max_d = -1;
          s_cold = 0;
          s_reads = 0;
          s_writes = 0;
        }
      in
      Hashtbl.replace t.srcs src s;
      s

let record_read s page =
  s.s_reads <- s.s_reads + 1;
  match Stack.access s.stack page with
  | None -> s.s_cold <- s.s_cold + 1
  | Some d ->
      if d >= Array.length s.hist then begin
        let bigger = Array.make (max (d + 1) (2 * Array.length s.hist)) 0 in
        Array.blit s.hist 0 bigger 0 (Array.length s.hist);
        s.hist <- bigger
      end;
      s.hist.(d) <- s.hist.(d) + 1;
      if d > s.max_d then s.max_d <- d

let record_write s page =
  s.s_writes <- s.s_writes + 1;
  ignore (Stack.access s.stack page)

let observe t (e : Obs.event) =
  match e.Obs.kind with
  | Obs.Read | Obs.Cache_hit -> record_read (state t e.Obs.src) e.Obs.page
  | Obs.Write | Obs.Alloc -> record_write (state t e.Obs.src) e.Obs.page
  | Obs.Free -> Stack.forget (state t e.Obs.src).stack e.Obs.page
  | Obs.Evict | Obs.Write_back | Obs.Pin | Obs.Fault | Obs.Retry | Obs.Give_up
  | Obs.Journal_write | Obs.Checkpoint | Obs.Corrupt | Obs.Phase
  | Obs.Span_begin | Obs.Span_end ->
      ()

let sink t = Obs.custom (observe t)

let attach t obs =
  t.resolve <- Obs.source_name obs;
  Obs.set_sink obs (Obs.tee (Obs.current_sink obs) (sink t))

let source_label t i =
  match t.resolve i with Some n -> n | None -> Printf.sprintf "src%d" i

let sources t =
  Hashtbl.fold (fun i _ acc -> i :: acc) t.srcs []
  |> List.sort compare
  |> List.map (fun i -> (i, source_label t i))

let mrc t src =
  match Hashtbl.find_opt t.srcs src with
  | None -> None
  | Some s when s.s_reads = 0 -> None
  | Some s ->
      let flat = s.max_d + 1 in
      let hits = Array.make (flat + 1) 0 in
      for c = 1 to flat do
        hits.(c) <- hits.(c - 1) + s.hist.(c - 1)
      done;
      Some
        {
          m_accesses = s.s_reads;
          m_cold = s.s_cold;
          m_distinct = Stack.size s.stack;
          m_hits = hits;
        }

let mrcs t =
  List.filter_map (fun (i, name) ->
      Option.map (fun m -> (name, m)) (mrc t i))
    (sources t)

let write_refs t src =
  match Hashtbl.find_opt t.srcs src with Some s -> s.s_writes | None -> 0

let reset t = Hashtbl.reset t.srcs

(* ------------------------------------------------------------------ *)
(* Rendering                                                          *)
(* ------------------------------------------------------------------ *)

let default_sizes curves =
  let flat =
    List.fold_left (fun acc (_, m) -> max acc (flat_at m)) 1 curves
  in
  let rec up acc c = if c / 2 >= flat then List.rev acc else up (c * 2 :: acc) (c * 2) in
  up [ 1 ] 1

let pp_table ?sizes ppf curves =
  let sizes = match sizes with Some s -> s | None -> default_sizes curves in
  let w =
    List.fold_left (fun acc (name, _) -> max acc (String.length name)) 8 curves
  in
  Format.fprintf ppf "%-10s" "";
  List.iter (fun (name, _) -> Format.fprintf ppf " %*s" w name) curves;
  Format.fprintf ppf "@\n%-10s" "accesses";
  List.iter (fun (_, m) -> Format.fprintf ppf " %*d" w (accesses m)) curves;
  Format.fprintf ppf "@\n%-10s" "cold";
  List.iter (fun (_, m) -> Format.fprintf ppf " %*d" w (cold m)) curves;
  Format.fprintf ppf "@\n%-10s" "flat-at";
  List.iter (fun (_, m) -> Format.fprintf ppf " %*d" w (flat_at m)) curves;
  Format.fprintf ppf "@\n%-10s" "cache";
  List.iter (fun _ -> Format.fprintf ppf " %*s" w "hit%") curves;
  Format.fprintf ppf "@\n";
  List.iter
    (fun c ->
      Format.fprintf ppf "%-10d" c;
      List.iter
        (fun (_, m) ->
          Format.fprintf ppf " %*.1f" w (100. *. hit_ratio m c))
        curves;
      Format.fprintf ppf "@\n")
    sizes

let to_json ?sizes curves =
  let sizes = match sizes with Some s -> s | None -> default_sizes curves in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"curves\": [";
  List.iteri
    (fun i (name, m) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "\n    {\"source\": %S, \"accesses\": %d, \"cold\": %d, \
            \"distinct\": %d, \"flat_at\": %d, \"points\": ["
           name (accesses m) (cold m) (distinct m) (flat_at m));
      List.iteri
        (fun j c ->
          if j > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf
            (Printf.sprintf "{\"size\": %d, \"hit_ratio\": %.6f}" c
               (hit_ratio m c)))
        sizes;
      Buffer.add_string buf "]}")
    curves;
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

let of_file path =
  let t = create () in
  Obs.iter_file path (observe t);
  t
