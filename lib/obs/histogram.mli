(** Fixed log-bucketed histogram of non-negative integers.

    Built for per-query I/O distributions: the paper's bounds are
    worst-case per operation, so benchmarks must report tails (p99, max),
    not just means. Values [0..63] are counted exactly — one bucket per
    value — and larger values fall into octave buckets with 8 sub-buckets
    per power of two (relative error at most 12.5%). All storage is one
    fixed array; {!add} never allocates. *)

type t

val create : unit -> t
val reset : t -> unit

(** [add t v] records [v]. Raises [Invalid_argument] on [v < 0]. *)
val add : t -> int -> unit

val count : t -> int

(** [total t] is the sum of all recorded values. *)
val total : t -> int

val mean : t -> float

(** Exact extremes of the recorded values ([0] when empty). *)
val min_value : t -> int

val max_value : t -> int

(** [percentile t p] for [0 <= p <= 100]: an upper bound on the smallest
    value [v] with at least [p]% of recordings [<= v] — exact for values
    below 64, within one sub-bucket (≤ 12.5% relative error) above, and
    clamped to [max_value t]. On an {e empty} histogram it returns [0]
    and never raises — only [p] outside [0..100] is an
    [Invalid_argument]. Pinned by a randomized property test against an
    exact sorted-array reference (see [test/test_obs.ml]). *)
val percentile : t -> float -> int

val p50 : t -> int
val p90 : t -> int
val p99 : t -> int

(** [merge ~into b] adds [b]'s recordings into [into]. *)
val merge : into:t -> t -> unit

(** [nonzero_buckets t] lists [(bucket lower bound, count)] pairs in
    increasing value order — the raw distribution for exporters. *)
val nonzero_buckets : t -> (int * int) list

(** [to_json t] is a single JSON object: count, sum, mean, min, p50, p90,
    p99, max, and the nonzero buckets as [[value, count]] pairs. *)
val to_json : t -> string

val pp : Format.formatter -> t -> unit
