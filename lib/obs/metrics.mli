(** A zero-dependency registry of named counters, gauges and histograms,
    exportable as Prometheus text format and JSON.

    Traces ({!Obs}) answer "what did this run do, event by event";
    metrics answer "how much, per name" — the aggregate view a scraper
    or a CI artifact wants. The registry is populated two ways:

    - directly, through {!counter}/{!gauge}/{!histogram} (used by
      [Pager.export_metrics] and [Buffer_pool.export_metrics] to publish
      their counter state);
    - from the event stream, by installing {!attach} on an {!Obs.t}
      handle: every I/O event increments a
      [pathcache_io_events_total{kind,source}] counter and every closing
      span feeds the [pathcache_span_total_ios{label}] histogram — the
      existing [?obs] instrumentation points in every structure become
      metric sources with no new plumbing.

    The overhead contract matches {!Obs}: a structure whose [?obs] is
    absent (or whose sink is null) never sees the registry, so default
    runs keep byte-identical I/O counts; with metrics enabled, the
    registry only *listens* to events, so counts are still identical.

    Registration is idempotent: asking for an existing (name, labels)
    pair returns the existing instance. Registering one name as two
    different metric types raises [Invalid_argument]. *)

type t

val create : unit -> t

(** {1 Instruments} *)

type counter

(** [counter t name] registers (or finds) a monotonically increasing
    counter. By Prometheus convention, [name] should end in [_total]. *)
val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val inc : ?by:int -> counter -> unit
val counter_value : counter -> int

type gauge

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set : gauge -> int -> unit
val gauge_value : gauge -> int

type fgauge

(** [fgauge t name] registers (or finds) a float-valued gauge (ratios,
    fractions); exported as a plain Prometheus gauge. A name registered
    as an int {!gauge} cannot be re-registered as an [fgauge] (and vice
    versa) — that raises [Invalid_argument] like any other type clash. *)
val fgauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> fgauge

val fset : fgauge -> float -> unit
val fgauge_value : fgauge -> float

(** [histogram t name] registers (or finds) a log-bucketed
    {!Histogram.t}; record into it with {!Histogram.add}. *)
val histogram :
  t -> ?help:string -> ?labels:(string * string) list -> string -> Histogram.t

(** {1 Event-stream wiring} *)

(** [observe t ?source ev] folds one trace event into the registry;
    [source] resolves source ids to names (default: ["src<i>"]). *)
val observe : t -> ?source:(int -> string option) -> Obs.event -> unit

(** [sink t ?source ()] is an {!Obs.sink} feeding {!observe}. *)
val sink : t -> ?source:(int -> string option) -> unit -> Obs.sink

(** [attach t obs] tees the registry onto [obs]'s current sink (keeping
    an installed trace sink working) with source names resolved through
    the handle. The handle becomes enabled if it was not. *)
val attach : t -> Obs.t -> unit

(** {1 Export} *)

(** [to_prometheus t] renders the Prometheus text exposition format:
    [# HELP]/[# TYPE] headers, one line per (name, labels), histograms
    as cumulative [_bucket{le=...}] series plus [_sum]/[_count]. *)
val to_prometheus : t -> string

(** [to_json t] is one JSON object keyed by metric name. *)
val to_json : t -> string

(** [names t] lists registered family names in registration order. *)
val names : t -> string list
