(* Observability: a typed trace of I/O events with pluggable sinks.

   Design constraints (DESIGN.md §7):
   - zero dependencies — stdlib only, so every library can link it;
   - zero overhead when disabled — a pager whose [obs] is [None] or
     whose sink is the null sink must produce byte-identical I/O counts
     and indistinguishable wall-clock time;
   - deterministic — events are stamped with a logical tick, never a
     wall clock, so a fixed seed yields a fixed trace. *)

type kind =
  | Read
  | Write
  | Alloc
  | Free
  | Cache_hit
  | Evict
  | Write_back
  | Pin
  | Fault
  | Retry
  | Journal_write
  | Checkpoint
  | Corrupt
  | Span_begin
  | Span_end

type event = {
  tick : int;
  kind : kind;
  src : int;
  page : int;
  label : string;
  args : (string * int) list;
}

let kind_name = function
  | Read -> "read"
  | Write -> "write"
  | Alloc -> "alloc"
  | Free -> "free"
  | Cache_hit -> "cache_hit"
  | Evict -> "evict"
  | Write_back -> "write_back"
  | Pin -> "pin"
  | Fault -> "fault"
  | Retry -> "retry"
  | Journal_write -> "journal_write"
  | Checkpoint -> "checkpoint"
  | Corrupt -> "corrupt"
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"

let kind_of_name = function
  | "read" -> Some Read
  | "write" -> Some Write
  | "alloc" -> Some Alloc
  | "free" -> Some Free
  | "cache_hit" -> Some Cache_hit
  | "evict" -> Some Evict
  | "write_back" -> Some Write_back
  | "pin" -> Some Pin
  | "fault" -> Some Fault
  | "retry" -> Some Retry
  | "journal_write" -> Some Journal_write
  | "checkpoint" -> Some Checkpoint
  | "corrupt" -> Some Corrupt
  | "span_begin" -> Some Span_begin
  | "span_end" -> Some Span_end
  | _ -> None

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled: the formats are fixed and flat)        *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (escape k) v) args)
  ^ "}"

let jsonl_line e =
  let base =
    Printf.sprintf "{\"tick\":%d,\"kind\":\"%s\",\"src\":%d,\"page\":%d" e.tick
      (kind_name e.kind) e.src e.page
  in
  let label =
    if e.label = "" then "" else Printf.sprintf ",\"label\":\"%s\"" (escape e.label)
  in
  let args = if e.args = [] then "" else ",\"args\":" ^ args_json e.args in
  base ^ label ^ args ^ "}"

(* Chrome trace_event format (the JSON-array flavour): spans become
   duration events (ph B/E) on tid 0, I/O events become instants on a
   tid per source, so Perfetto renders one lane per pager. *)
let chrome_line e =
  match e.kind with
  | Span_begin ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":%d,\"pid\":0,\"tid\":0}"
        (escape e.label) e.tick
  | Span_end ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":%d,\"pid\":0,\"tid\":0,\"args\":%s}"
        (escape e.label) e.tick (args_json e.args)
  | k ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"io\",\"ph\":\"i\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"s\":\"t\",\"args\":{\"page\":%d}}"
        (kind_name k) e.tick (e.src + 1) e.page

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)
(* ------------------------------------------------------------------ *)

type sink_ops = {
  s_emit : event -> unit;
  s_flush : unit -> unit;
  s_close : unit -> unit;
  s_events : unit -> event list;
}

type sink = Null | Active of sink_ops

let null = Null

let no_events () = []

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Obs.ring: capacity <= 0";
  let buf = Array.make capacity None in
  let next = ref 0 in
  let emit e =
    buf.(!next mod capacity) <- Some e;
    incr next
  in
  let events () =
    let n = !next in
    let first = max 0 (n - capacity) in
    List.filter_map
      (fun i -> buf.(i mod capacity))
      (List.init (n - first) (fun k -> first + k))
  in
  Active { s_emit = emit; s_flush = ignore; s_close = ignore; s_events = events }

let jsonl oc =
  Active
    {
      s_emit = (fun e -> output_string oc (jsonl_line e ^ "\n"));
      s_flush = (fun () -> flush oc);
      s_close = (fun () -> flush oc);
      s_events = no_events;
    }

let chrome oc =
  let first = ref true in
  output_string oc "[";
  Active
    {
      s_emit =
        (fun e ->
          if !first then first := false else output_string oc ",\n";
          output_string oc (chrome_line e));
      s_flush = (fun () -> flush oc);
      s_close =
        (fun () ->
          output_string oc "]\n";
          flush oc);
      s_events = no_events;
    }

let custom f =
  Active { s_emit = f; s_flush = ignore; s_close = ignore; s_events = no_events }

let tee a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Active x, Active y ->
      Active
        {
          s_emit =
            (fun e ->
              x.s_emit e;
              y.s_emit e);
          s_flush =
            (fun () ->
              x.s_flush ();
              y.s_flush ());
          s_close =
            (fun () ->
              x.s_close ();
              y.s_close ());
          s_events = x.s_events;
        }

(* ------------------------------------------------------------------ *)
(* The handle                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  mutable tick : int;
  mutable sink : sink;
  mutable next_src : int;
  mutable sources : (int * string) list; (* src id -> name, newest first *)
  mutable next_span : int;
  mutable depth : int;
  mutable on_close : unit -> unit;
}

type source = { o : t; sid : int }

let create ?(sink = Null) () =
  {
    tick = 0;
    sink;
    next_src = 0;
    sources = [];
    next_span = 0;
    depth = 0;
    on_close = ignore;
  }

let set_sink t sink = t.sink <- sink
let current_sink t = t.sink
let enabled t = t.sink <> Null
let tick t = t.tick

let register t ~name =
  let sid = t.next_src in
  t.next_src <- sid + 1;
  t.sources <- (sid, name) :: t.sources;
  { o = t; sid }

let source_id s = s.sid
let source_name t sid = List.assoc_opt sid t.sources

let push t e =
  match t.sink with
  | Null -> ()
  | Active ops ->
      ops.s_emit e

let emit s kind ~page =
  let t = s.o in
  match t.sink with
  | Null -> ()
  | Active ops ->
      let tick = t.tick in
      t.tick <- tick + 1;
      ops.s_emit { tick; kind; src = s.sid; page; label = ""; args = [] }

let span_depth t = t.depth

let with_span obs ~kind ?result_args f =
  match obs with
  | None -> f ()
  | Some t -> (
      match t.sink with
      | Null -> f ()
      | Active _ ->
          let id = t.next_span in
          t.next_span <- id + 1;
          let tk = t.tick in
          t.tick <- tk + 1;
          t.depth <- t.depth + 1;
          push t
            { tick = tk; kind = Span_begin; src = -1; page = id; label = kind;
              args = [] };
          let finish args =
            t.depth <- t.depth - 1;
            let tk = t.tick in
            t.tick <- tk + 1;
            push t
              { tick = tk; kind = Span_end; src = -1; page = id; label = kind;
                args }
          in
          (match f () with
          | r ->
              finish (match result_args with Some g -> g r | None -> []);
              r
          | exception e ->
              finish [ ("error", 1) ];
              raise e))

let events t =
  match t.sink with Null -> [] | Active ops -> ops.s_events ()

let flush t = match t.sink with Null -> () | Active ops -> ops.s_flush ()

let close t =
  (match t.sink with Null -> () | Active ops -> ops.s_close ());
  let f = t.on_close in
  t.on_close <- ignore;
  f ();
  t.sink <- Null

(* [to_file path] picks the format by extension: [.json] gets the Chrome
   trace_event array (load in chrome://tracing or ui.perfetto.dev),
   anything else newline-delimited JSON objects. *)
let to_file path =
  let oc = open_out path in
  let sink =
    if Filename.check_suffix path ".json" then chrome oc else jsonl oc
  in
  let t = create ~sink () in
  t.on_close <- (fun () -> close_out oc);
  t

(* ------------------------------------------------------------------ *)
(* JSONL replay                                                       *)
(* ------------------------------------------------------------------ *)

type totals = {
  t_reads : int;
  t_writes : int;
  t_cache_hits : int;
  t_allocs : int;
  t_frees : int;
  t_evictions : int;
  t_write_backs : int;
  t_spans : int;
  t_events : int;
}

let zero_totals =
  {
    t_reads = 0;
    t_writes = 0;
    t_cache_hits = 0;
    t_allocs = 0;
    t_frees = 0;
    t_evictions = 0;
    t_write_backs = 0;
    t_spans = 0;
    t_events = 0;
  }

(* Extract the string value of ["key":"..."] from a JSONL line written by
   {!jsonl_line}. Deliberately not a general JSON parser, but strict
   enough that corrupt or truncated lines are rejected. *)
let field_string line key =
  let pat = "\"" ^ key ^ "\":\"" in
  match
    let plen = String.length pat and llen = String.length line in
    let rec find i =
      if i + plen > llen then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let parse_line lineno line =
  let fail msg =
    failwith (Printf.sprintf "Obs.replay: line %d: %s" lineno msg)
  in
  let n = String.length line in
  if n = 0 then fail "empty line";
  if line.[0] <> '{' || line.[n - 1] <> '}' then fail "not a JSON object";
  match field_string line "kind" with
  | None -> fail "missing \"kind\" field"
  | Some k -> (
      match kind_of_name k with
      | None -> fail (Printf.sprintf "unknown kind %S" k)
      | Some kind -> kind)

(* Replay a JSONL trace back into I/O totals. A [Write_back] is a
   deferred write being charged, so it counts into [t_writes] too —
   mirroring how {!Pc_pagestore.Io_stats} accounts write-backs. *)
let replay_channel ic =
  let rec go lineno acc =
    match input_line ic with
    | exception End_of_file -> acc
    | line when String.trim line = "" -> go (lineno + 1) acc
    | line -> (
        let acc = { acc with t_events = acc.t_events + 1 } in
        match parse_line lineno (String.trim line) with
        | Read -> go (lineno + 1) { acc with t_reads = acc.t_reads + 1 }
        | Write -> go (lineno + 1) { acc with t_writes = acc.t_writes + 1 }
        | Cache_hit ->
            go (lineno + 1) { acc with t_cache_hits = acc.t_cache_hits + 1 }
        | Alloc -> go (lineno + 1) { acc with t_allocs = acc.t_allocs + 1 }
        | Free -> go (lineno + 1) { acc with t_frees = acc.t_frees + 1 }
        | Evict -> go (lineno + 1) { acc with t_evictions = acc.t_evictions + 1 }
        | Write_back ->
            go (lineno + 1)
              {
                acc with
                t_write_backs = acc.t_write_backs + 1;
                t_writes = acc.t_writes + 1;
              }
        | Journal_write | Checkpoint ->
            (* durability writes are device writes, mirroring Io_stats *)
            go (lineno + 1) { acc with t_writes = acc.t_writes + 1 }
        | Pin | Fault | Retry | Corrupt -> go (lineno + 1) acc
        | Span_begin -> go (lineno + 1) { acc with t_spans = acc.t_spans + 1 }
        | Span_end -> go (lineno + 1) acc)
  in
  go 1 zero_totals

let replay_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> replay_channel ic)

let pp_totals ppf t =
  Format.fprintf ppf
    "{events=%d; reads=%d; writes=%d; hits=%d; allocs=%d; frees=%d; \
     evictions=%d; write_backs=%d; spans=%d}"
    t.t_events t.t_reads t.t_writes t.t_cache_hits t.t_allocs t.t_frees
    t.t_evictions t.t_write_backs t.t_spans

(* ------------------------------------------------------------------ *)
(* Per-span-label profile of a JSONL trace                            *)
(* ------------------------------------------------------------------ *)

(* Extract the integer value of ["key":123] — the numeric sibling of
   {!field_string}. *)
let field_int line key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < llen
        && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None
      else int_of_string_opt (String.sub line start (!stop - start))

module Profile = struct
  type row = {
    label : string;
    count : int;
    total_ios : int;
    mean : float;
    p99 : int;
    max : int;
  }

  type agg = {
    mutable a_count : int;
    mutable a_total : int;
    a_histo : Histogram.t;
  }

  (* One open span: its id, label, and the I/Os seen since it opened.
     Attribution is inclusive (an event counts toward every open span),
     mirroring the documented [with_counted] nesting contract. *)
  type open_span = { os_id : int; os_label : string; mutable os_ios : int }

  let of_channel ic =
    let aggs : (string, agg) Hashtbl.t = Hashtbl.create 16 in
    let agg_of label =
      match Hashtbl.find_opt aggs label with
      | Some a -> a
      | None ->
          let a = { a_count = 0; a_total = 0; a_histo = Histogram.create () } in
          Hashtbl.add aggs label a;
          a
    in
    let stack = ref [] in
    let fail lineno msg =
      failwith (Printf.sprintf "Obs.profile: line %d: %s" lineno msg)
    in
    let rec go lineno =
      match input_line ic with
      | exception End_of_file -> ()
      | line when String.trim line = "" -> go (lineno + 1)
      | line ->
          let line = String.trim line in
          (match parse_line lineno line with
          | Span_begin ->
              let id =
                match field_int line "page" with
                | Some id -> id
                | None -> fail lineno "span_begin without span id"
              in
              let label =
                Option.value ~default:"" (field_string line "label")
              in
              stack := { os_id = id; os_label = label; os_ios = 0 } :: !stack
          | Span_end -> (
              let id =
                match field_int line "page" with
                | Some id -> id
                | None -> fail lineno "span_end without span id"
              in
              match !stack with
              | [] -> fail lineno "span_end with no open span"
              | top :: rest ->
                  if top.os_id <> id then
                    fail lineno
                      (Printf.sprintf "span nesting mismatch: open %d, end %d"
                         top.os_id id);
                  stack := rest;
                  let a = agg_of top.os_label in
                  a.a_count <- a.a_count + 1;
                  a.a_total <- a.a_total + top.os_ios;
                  Histogram.add a.a_histo top.os_ios)
          | Read | Write | Write_back | Journal_write | Checkpoint ->
              List.iter (fun os -> os.os_ios <- os.os_ios + 1) !stack
          | Alloc | Free | Cache_hit | Evict | Pin | Fault | Retry | Corrupt
            -> ());
          go (lineno + 1)
    in
    go 1;
    Hashtbl.fold
      (fun label a acc ->
        {
          label;
          count = a.a_count;
          total_ios = a.a_total;
          mean =
            (if a.a_count = 0 then 0.
             else float_of_int a.a_total /. float_of_int a.a_count);
          p99 = Histogram.p99 a.a_histo;
          max = Histogram.max_value a.a_histo;
        }
        :: acc)
      aggs []
    |> List.sort (fun a b ->
           match compare b.total_ios a.total_ios with
           | 0 -> compare a.label b.label
           | c -> c)

  let of_file path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> of_channel ic)

  let pp ppf rows =
    Format.fprintf ppf "%-18s %8s %10s %8s %6s %6s@\n" "span" "count"
      "total-io" "mean" "p99" "max";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-18s %8d %10d %8.1f %6d %6d@\n" r.label r.count
          r.total_ios r.mean r.p99 r.max)
      rows
end
