(* Observability: a typed trace of I/O events with pluggable sinks.

   Design constraints (DESIGN.md §7):
   - zero dependencies — stdlib only, so every library can link it;
   - zero overhead when disabled — a pager whose [obs] is [None] or
     whose sink is the null sink must produce byte-identical I/O counts
     and indistinguishable wall-clock time;
   - deterministic — events are stamped with a logical tick; the wall
     clock is opt-in ([Clock], off by default) and never feeds back
     into control flow, so a fixed seed yields a fixed trace. *)

(* ------------------------------------------------------------------ *)
(* Clocks                                                             *)
(* ------------------------------------------------------------------ *)

module Clock = struct
  (* The real clock is injected as a function so this library stays
     stdlib-only (no Unix): callers pass e.g.
     [fun () -> int_of_float (Unix.gettimeofday () *. 1e9)]. The mock
     clock advances by a fixed step on every read, which makes every
     wall_ns in a trace a deterministic function of the event order. *)
  type t =
    | Off
    | Fn of (unit -> int)
    | Mock of { mutable now : int; step : int }

  let off = Off
  let of_fn f = Fn f

  let mock ?(start = 0) ?(step = 1000) () =
    if step <= 0 then invalid_arg "Obs.Clock.mock: step <= 0";
    Mock { now = start; step }

  let enabled = function Off -> false | Fn _ | Mock _ -> true

  let now = function
    | Off -> 0
    | Fn f -> f ()
    | Mock m ->
        let v = m.now in
        m.now <- v + m.step;
        v
end

type kind =
  | Read
  | Write
  | Alloc
  | Free
  | Cache_hit
  | Evict
  | Write_back
  | Pin
  | Fault
  | Retry
  | Give_up
  | Journal_write
  | Checkpoint
  | Corrupt
  | Phase
  | Span_begin
  | Span_end

type event = {
  tick : int;
  kind : kind;
  src : int;
  page : int;
  label : string;
  args : (string * int) list;
  wall_ns : int option;
}

let kind_name = function
  | Read -> "read"
  | Write -> "write"
  | Alloc -> "alloc"
  | Free -> "free"
  | Cache_hit -> "cache_hit"
  | Evict -> "evict"
  | Write_back -> "write_back"
  | Pin -> "pin"
  | Fault -> "fault"
  | Retry -> "retry"
  | Give_up -> "give_up"
  | Journal_write -> "journal_write"
  | Checkpoint -> "checkpoint"
  | Corrupt -> "corrupt"
  | Phase -> "phase"
  | Span_begin -> "span_begin"
  | Span_end -> "span_end"

let kind_of_name = function
  | "read" -> Some Read
  | "write" -> Some Write
  | "alloc" -> Some Alloc
  | "free" -> Some Free
  | "cache_hit" -> Some Cache_hit
  | "evict" -> Some Evict
  | "write_back" -> Some Write_back
  | "pin" -> Some Pin
  | "fault" -> Some Fault
  | "retry" -> Some Retry
  | "give_up" -> Some Give_up
  | "journal_write" -> Some Journal_write
  | "checkpoint" -> Some Checkpoint
  | "corrupt" -> Some Corrupt
  | "phase" -> Some Phase
  | "span_begin" -> Some Span_begin
  | "span_end" -> Some Span_end
  | _ -> None

(* Phase labels are ["layer.op"]; the layer prefix names the attribution
   category so a span's wall time decomposes into
   device/codec/wal/checksum/pool/other. *)
let phase_category label =
  match String.index_opt label '.' with
  | None -> "other"
  | Some i -> (
      match String.sub label 0 i with
      | "dev" -> "device"
      | "codec" -> "codec"
      | "wal" -> "wal"
      | "checksum" -> "checksum"
      | "pool" -> "pool"
      | _ -> "other")

let phase_categories = [ "device"; "codec"; "wal"; "checksum"; "pool"; "other" ]

(* ------------------------------------------------------------------ *)
(* JSON emission (hand-rolled: the formats are fixed and flat)        *)
(* ------------------------------------------------------------------ *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let args_json args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%d" (escape k) v) args)
  ^ "}"

let jsonl_line e =
  let base =
    Printf.sprintf "{\"tick\":%d,\"kind\":\"%s\",\"src\":%d,\"page\":%d" e.tick
      (kind_name e.kind) e.src e.page
  in
  (* appended only when present, so clock-off traces are byte-identical
     to those of earlier versions *)
  let wall =
    match e.wall_ns with
    | None -> ""
    | Some w -> Printf.sprintf ",\"wall_ns\":%d" w
  in
  let label =
    if e.label = "" then "" else Printf.sprintf ",\"label\":\"%s\"" (escape e.label)
  in
  let args = if e.args = [] then "" else ",\"args\":" ^ args_json e.args in
  base ^ wall ^ label ^ args ^ "}"

(* Chrome trace_event format (the JSON-array flavour): spans become
   duration events (ph B/E) on tid 0, I/O events become instants on a
   tid per source, so Perfetto renders one lane per pager. With a clock
   installed, ts is wall microseconds; otherwise the logical tick. *)
let chrome_line e =
  let ts = match e.wall_ns with Some w -> w / 1000 | None -> e.tick in
  match e.kind with
  | Span_begin ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"B\",\"ts\":%d,\"pid\":0,\"tid\":0}"
        (escape e.label) ts
  | Span_end ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"E\",\"ts\":%d,\"pid\":0,\"tid\":0,\"args\":%s}"
        (escape e.label) ts (args_json e.args)
  | Phase ->
      let ns =
        match List.assoc_opt "ns" e.args with Some n -> n | None -> 0
      in
      let dur = ns / 1000 in
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"phase\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":0,\"tid\":%d,\"args\":{\"page\":%d,\"ns\":%d}}"
        (escape e.label)
        (max 0 (ts - dur))
        dur (e.src + 1) e.page ns
  | k ->
      Printf.sprintf
        "{\"name\":\"%s\",\"cat\":\"io\",\"ph\":\"i\",\"ts\":%d,\"pid\":0,\"tid\":%d,\"s\":\"t\",\"args\":{\"page\":%d}}"
        (kind_name k) ts (e.src + 1) e.page

(* ------------------------------------------------------------------ *)
(* Sinks                                                              *)
(* ------------------------------------------------------------------ *)

type sink_ops = {
  s_emit : event -> unit;
  s_flush : unit -> unit;
  s_close : unit -> unit;
  s_events : unit -> event list;
}

type sink = Null | Active of sink_ops

let null = Null

let no_events () = []

let ring ~capacity =
  if capacity <= 0 then invalid_arg "Obs.ring: capacity <= 0";
  let buf = Array.make capacity None in
  let next = ref 0 in
  let emit e =
    buf.(!next mod capacity) <- Some e;
    incr next
  in
  let events () =
    let n = !next in
    let first = max 0 (n - capacity) in
    List.filter_map
      (fun i -> buf.(i mod capacity))
      (List.init (n - first) (fun k -> first + k))
  in
  Active { s_emit = emit; s_flush = ignore; s_close = ignore; s_events = events }

(* File sinks flush every [flush_every] events in addition to on
   flush/close, so a killed process loses at most a bounded tail of the
   trace rather than the whole stdlib channel buffer. *)
let jsonl ?(flush_every = 256) oc =
  if flush_every <= 0 then invalid_arg "Obs.jsonl: flush_every <= 0";
  let pending = ref 0 in
  Active
    {
      s_emit =
        (fun e ->
          output_string oc (jsonl_line e ^ "\n");
          incr pending;
          if !pending >= flush_every then (
            pending := 0;
            flush oc));
      s_flush = (fun () -> flush oc);
      s_close = (fun () -> flush oc);
      s_events = no_events;
    }

let chrome ?(flush_every = 256) oc =
  if flush_every <= 0 then invalid_arg "Obs.chrome: flush_every <= 0";
  let first = ref true in
  let pending = ref 0 in
  output_string oc "[";
  Active
    {
      s_emit =
        (fun e ->
          if !first then first := false else output_string oc ",\n";
          output_string oc (chrome_line e);
          incr pending;
          if !pending >= flush_every then (
            pending := 0;
            flush oc));
      s_flush = (fun () -> flush oc);
      s_close =
        (fun () ->
          output_string oc "]\n";
          flush oc);
      s_events = no_events;
    }

let custom f =
  Active { s_emit = f; s_flush = ignore; s_close = ignore; s_events = no_events }

let tee a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Active x, Active y ->
      Active
        {
          s_emit =
            (fun e ->
              x.s_emit e;
              y.s_emit e);
          s_flush =
            (fun () ->
              x.s_flush ();
              y.s_flush ());
          s_close =
            (fun () ->
              x.s_close ();
              y.s_close ());
          s_events = x.s_events;
        }

(* ------------------------------------------------------------------ *)
(* The handle                                                         *)
(* ------------------------------------------------------------------ *)

type t = {
  mutable tick : int;
  mutable sink : sink;
  mutable clock : Clock.t;
  mutable next_src : int;
  mutable sources : (int * string) list; (* src id -> name, newest first *)
  mutable next_span : int;
  mutable depth : int;
  mutable on_close : unit -> unit;
  owner_domain : int;
      (* The handle is single-writer: ring/JSONL/Chrome sinks append to
         unsynchronized buffers and channels, and [tick] itself is a
         mutable sequence. Rather than pay for a lock on every traced
         event, the handle records its creating domain and emission
         asserts it when the sink is enabled. Null-sink handles are
         freely shareable (every emit is a no-op). *)
}

type source = { o : t; sid : int }

exception Cross_domain_emit of { owner : int; caller : int }

let () =
  Printexc.register_printer (function
    | Cross_domain_emit { owner; caller } ->
        Some
          (Printf.sprintf
             "Pc_obs.Obs.Cross_domain_emit: trace handle owned by domain %d \
              used from domain %d (Obs handles are single-writer; give each \
              domain its own handle or keep the sink null)"
             owner caller)
    | _ -> None)

let create ?(sink = Null) ?(clock = Clock.Off) () =
  {
    tick = 0;
    sink;
    clock;
    next_src = 0;
    sources = [];
    next_span = 0;
    depth = 0;
    on_close = ignore;
    owner_domain = (Domain.self () :> int);
  }

let owner_domain t = t.owner_domain

(* Only emissions that would actually mutate the sink are checked, so
   null-sink handles stay shareable and the default traced-off path is
   untouched. *)
let[@inline] check_owner t =
  let caller = (Domain.self () :> int) in
  if caller <> t.owner_domain then
    raise (Cross_domain_emit { owner = t.owner_domain; caller })

let set_sink t sink = t.sink <- sink
let current_sink t = t.sink
let enabled t = t.sink <> Null
let tick t = t.tick
let set_clock t clock = t.clock <- clock
let clock t = t.clock
let wall_enabled t = Clock.enabled t.clock
let now_ns t = Clock.now t.clock

(* [None] when the clock is off, so serialized events are byte-identical
   to those of clock-unaware versions. *)
let stamp t =
  match t.clock with Clock.Off -> None | c -> Some (Clock.now c)

let register t ~name =
  let sid = t.next_src in
  t.next_src <- sid + 1;
  t.sources <- (sid, name) :: t.sources;
  { o = t; sid }

let source_id s = s.sid
let source_name t sid = List.assoc_opt sid t.sources

let push t e =
  match t.sink with
  | Null -> ()
  | Active ops ->
      ops.s_emit e

let emit s kind ~page =
  let t = s.o in
  match t.sink with
  | Null -> ()
  | Active ops ->
      check_owner t;
      let tick = t.tick in
      t.tick <- tick + 1;
      ops.s_emit
        { tick; kind; src = s.sid; page; label = ""; args = [];
          wall_ns = stamp t }

(* [emit_phase] records a completed timed section: [ns] is the measured
   duration, [wall_ns] the stamp at emission. Phases never nest inside
   each other (they wrap leaf operations), so summing them under a span
   never double-counts. *)
let emit_phase s ~phase ~page ~ns =
  let t = s.o in
  match t.sink with
  | Null -> ()
  | Active ops ->
      check_owner t;
      let tick = t.tick in
      t.tick <- tick + 1;
      ops.s_emit
        { tick; kind = Phase; src = s.sid; page; label = phase;
          args = [ ("ns", ns) ]; wall_ns = stamp t }

let with_phase s ~phase ~page f =
  let t = s.o in
  match t.clock with
  | Clock.Off -> f ()
  | c ->
      let t0 = Clock.now c in
      let finish () =
        let ns = max 0 (Clock.now c - t0) in
        emit_phase s ~phase ~page ~ns
      in
      (match f () with
      | r ->
          finish ();
          r
      | exception e ->
          finish ();
          raise e)

let span_depth t = t.depth

let with_span obs ~kind ?result_args f =
  match obs with
  | None -> f ()
  | Some t -> (
      match t.sink with
      | Null -> f ()
      | Active _ ->
          check_owner t;
          let id = t.next_span in
          t.next_span <- id + 1;
          let tk = t.tick in
          t.tick <- tk + 1;
          t.depth <- t.depth + 1;
          push t
            { tick = tk; kind = Span_begin; src = -1; page = id; label = kind;
              args = []; wall_ns = stamp t };
          let finish args =
            t.depth <- t.depth - 1;
            let tk = t.tick in
            t.tick <- tk + 1;
            push t
              { tick = tk; kind = Span_end; src = -1; page = id; label = kind;
                args; wall_ns = stamp t }
          in
          (match f () with
          | r ->
              finish (match result_args with Some g -> g r | None -> []);
              r
          | exception e ->
              finish [ ("error", 1) ];
              raise e))

let events t =
  match t.sink with Null -> [] | Active ops -> ops.s_events ()

let flush t = match t.sink with Null -> () | Active ops -> ops.s_flush ()

let close t =
  (match t.sink with Null -> () | Active ops -> ops.s_close ());
  let f = t.on_close in
  t.on_close <- ignore;
  f ();
  t.sink <- Null

(* [to_file path] picks the format by extension: [.json] gets the Chrome
   trace_event array (load in chrome://tracing or ui.perfetto.dev),
   anything else newline-delimited JSON objects. *)
let to_file ?flush_every path =
  let oc = open_out path in
  let sink =
    if Filename.check_suffix path ".json" then chrome ?flush_every oc
    else jsonl ?flush_every oc
  in
  let t = create ~sink () in
  t.on_close <- (fun () -> close_out oc);
  t

(* ------------------------------------------------------------------ *)
(* JSONL replay                                                       *)
(* ------------------------------------------------------------------ *)

type totals = {
  t_reads : int;
  t_writes : int;
  t_cache_hits : int;
  t_allocs : int;
  t_frees : int;
  t_evictions : int;
  t_write_backs : int;
  t_spans : int;
  t_events : int;
  t_wall_ns : int;
  t_phase_ns : (string * int) list;
}

let zero_totals =
  {
    t_reads = 0;
    t_writes = 0;
    t_cache_hits = 0;
    t_allocs = 0;
    t_frees = 0;
    t_evictions = 0;
    t_write_backs = 0;
    t_spans = 0;
    t_events = 0;
    t_wall_ns = 0;
    t_phase_ns = [];
  }

(* Extract the string value of ["key":"..."] from a JSONL line written by
   {!jsonl_line}. Deliberately not a general JSON parser, but strict
   enough that corrupt or truncated lines are rejected. *)
let field_string line key =
  let pat = "\"" ^ key ^ "\":\"" in
  match
    let plen = String.length pat and llen = String.length line in
    let rec find i =
      if i + plen > llen then None
      else if String.sub line i plen = pat then Some (i + plen)
      else find (i + 1)
    in
    find 0
  with
  | None -> None
  | Some start -> (
      match String.index_from_opt line start '"' with
      | None -> None
      | Some stop -> Some (String.sub line start (stop - start)))

let parse_line lineno line =
  let fail msg =
    failwith (Printf.sprintf "Obs.replay: line %d: %s" lineno msg)
  in
  let n = String.length line in
  if n = 0 then fail "empty line";
  if line.[0] <> '{' || line.[n - 1] <> '}' then fail "not a JSON object";
  match field_string line "kind" with
  | None -> fail "missing \"kind\" field"
  | Some k -> (
      match kind_of_name k with
      | None -> fail (Printf.sprintf "unknown kind %S" k)
      | Some kind -> kind)

(* Extract the integer value of ["key":123] — the numeric sibling of
   {!field_string}. The match requires the opening quote, so a key that
   is a suffix of another (["ns"] vs ["wall_ns"]) cannot collide. *)
let field_int line key =
  let pat = "\"" ^ key ^ "\":" in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
      let stop = ref start in
      while
        !stop < llen
        && (match line.[!stop] with '0' .. '9' | '-' -> true | _ -> false)
      do
        incr stop
      done;
      if !stop = start then None
      else int_of_string_opt (String.sub line start (!stop - start))

(* Replay a JSONL trace back into I/O totals. A [Write_back] is a
   deferred write being charged, so it counts into [t_writes] too —
   mirroring how {!Pc_pagestore.Io_stats} accounts write-backs. Lines
   carrying [wall_ns] (v2 traces) additionally contribute a wall-clock
   extent and per-category phase sums; v1 tick-only traces yield zeros. *)
let replay_channel ic =
  let wall_min = ref max_int and wall_max = ref min_int in
  let phases : (string, int) Hashtbl.t = Hashtbl.create 8 in
  let see_wall line =
    match field_int line "wall_ns" with
    | None -> ()
    | Some w ->
        if w < !wall_min then wall_min := w;
        if w > !wall_max then wall_max := w
  in
  let rec go lineno acc =
    match input_line ic with
    | exception End_of_file -> acc
    | line when String.trim line = "" -> go (lineno + 1) acc
    | line -> (
        let line = String.trim line in
        let acc = { acc with t_events = acc.t_events + 1 } in
        let kind = parse_line lineno line in
        see_wall line;
        match kind with
        | Read -> go (lineno + 1) { acc with t_reads = acc.t_reads + 1 }
        | Write -> go (lineno + 1) { acc with t_writes = acc.t_writes + 1 }
        | Cache_hit ->
            go (lineno + 1) { acc with t_cache_hits = acc.t_cache_hits + 1 }
        | Alloc -> go (lineno + 1) { acc with t_allocs = acc.t_allocs + 1 }
        | Free -> go (lineno + 1) { acc with t_frees = acc.t_frees + 1 }
        | Evict -> go (lineno + 1) { acc with t_evictions = acc.t_evictions + 1 }
        | Write_back ->
            go (lineno + 1)
              {
                acc with
                t_write_backs = acc.t_write_backs + 1;
                t_writes = acc.t_writes + 1;
              }
        | Journal_write | Checkpoint ->
            (* durability writes are device writes, mirroring Io_stats *)
            go (lineno + 1) { acc with t_writes = acc.t_writes + 1 }
        | Phase ->
            (match (field_string line "label", field_int line "ns") with
            | Some label, Some ns ->
                let cat = phase_category label in
                let cur =
                  Option.value ~default:0 (Hashtbl.find_opt phases cat)
                in
                Hashtbl.replace phases cat (cur + ns)
            | _ -> ());
            go (lineno + 1) acc
        | Pin | Fault | Retry | Give_up | Corrupt -> go (lineno + 1) acc
        | Span_begin -> go (lineno + 1) { acc with t_spans = acc.t_spans + 1 }
        | Span_end -> go (lineno + 1) acc)
  in
  let acc = go 1 zero_totals in
  let t_wall_ns = if !wall_max >= !wall_min then !wall_max - !wall_min else 0 in
  let t_phase_ns =
    List.filter_map
      (fun cat ->
        match Hashtbl.find_opt phases cat with
        | Some ns when ns > 0 -> Some (cat, ns)
        | _ -> None)
      phase_categories
  in
  { acc with t_wall_ns; t_phase_ns }

let replay_file path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> replay_channel ic)

(* Parse the flat integer-valued args object written by {!args_json};
   keys are fixed identifiers (no escapes to worry about). *)
let field_args line =
  let pat = "\"args\":{" in
  let plen = String.length pat and llen = String.length line in
  let rec find i =
    if i + plen > llen then None
    else if String.sub line i plen = pat then Some (i + plen)
    else find (i + 1)
  in
  match find 0 with
  | None -> []
  | Some start ->
      let pos = ref start and out = ref [] and ok = ref true in
      while !ok && !pos < llen && line.[!pos] <> '}' do
        if line.[!pos] = ',' then incr pos;
        if !pos >= llen || line.[!pos] <> '"' then ok := false
        else
          match String.index_from_opt line (!pos + 1) '"' with
          | None -> ok := false
          | Some stop ->
              let key = String.sub line (!pos + 1) (stop - !pos - 1) in
              if stop + 1 >= llen || line.[stop + 1] <> ':' then ok := false
              else begin
                let s = stop + 2 in
                let e = ref s in
                while
                  !e < llen
                  && match line.[!e] with '0' .. '9' | '-' -> true | _ -> false
                do
                  incr e
                done;
                match int_of_string_opt (String.sub line s (!e - s)) with
                | Some v ->
                    out := (key, v) :: !out;
                    pos := !e
                | None -> ok := false
              end
      done;
      List.rev !out

(* Reconstruct full events from a JSONL trace — the input side of the
   analytics layers (Reuse_dist, Access_profile) that also listen live. *)
let iter_channel ic f =
  let rec go lineno =
    match input_line ic with
    | exception End_of_file -> ()
    | line when String.trim line = "" -> go (lineno + 1)
    | line ->
        let line = String.trim line in
        let kind = parse_line lineno line in
        f
          {
            tick = Option.value ~default:0 (field_int line "tick");
            kind;
            src = Option.value ~default:(-1) (field_int line "src");
            page = Option.value ~default:0 (field_int line "page");
            label = Option.value ~default:"" (field_string line "label");
            args = field_args line;
            wall_ns = field_int line "wall_ns";
          };
        go (lineno + 1)
  in
  go 1

let iter_file path f =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () -> iter_channel ic f)

let pp_ns ppf ns =
  if ns >= 1_000_000_000 then Format.fprintf ppf "%.3fs" (float_of_int ns /. 1e9)
  else if ns >= 1_000_000 then
    Format.fprintf ppf "%.2fms" (float_of_int ns /. 1e6)
  else if ns >= 1_000 then Format.fprintf ppf "%.1fus" (float_of_int ns /. 1e3)
  else Format.fprintf ppf "%dns" ns

let ns_string ns = Format.asprintf "%a" pp_ns ns

let pp_totals ppf t =
  Format.fprintf ppf
    "{events=%d; reads=%d; writes=%d; hits=%d; allocs=%d; frees=%d; \
     evictions=%d; write_backs=%d; spans=%d}"
    t.t_events t.t_reads t.t_writes t.t_cache_hits t.t_allocs t.t_frees
    t.t_evictions t.t_write_backs t.t_spans;
  (* wall-clock lines only when the trace carries wall_ns stamps, so v1
     tick-only traces print exactly as before *)
  if t.t_wall_ns > 0 || t.t_phase_ns <> [] then begin
    Format.fprintf ppf "@\nwall: %a" pp_ns t.t_wall_ns;
    if t.t_phase_ns <> [] then
      Format.fprintf ppf "@\nphases: %s"
        (String.concat "; "
           (List.map
              (fun (cat, ns) -> Printf.sprintf "%s=%s" cat (ns_string ns))
              t.t_phase_ns))
  end

(* ------------------------------------------------------------------ *)
(* Per-span-label profile of a JSONL trace                            *)
(* ------------------------------------------------------------------ *)

module Profile = struct
  type row = {
    label : string;
    count : int;
    total_ios : int;
    mean : float;
    p99 : int;
    max : int;
    wall_ns : int;
    phases : (string * int) list;
  }

  type stack = {
    stack_path : string list;
    stack_value : int;
    stack_ios : int;
    stack_count : int;
  }

  type analysis = { rows : row list; stacks : stack list; has_wall : bool }

  type agg = {
    mutable a_count : int;
    mutable a_total : int;
    mutable a_wall : int;
    a_phases : (string, int) Hashtbl.t;
    a_histo : Histogram.t;
  }

  (* One open span: its id, label, and the I/Os seen since it opened.
     Attribution is inclusive (an event counts toward every open span),
     mirroring the documented [with_counted] nesting contract. Phase
     durations are likewise inclusive for the per-label rows; for the
     folded stacks a phase attaches once, as a leaf frame under the
     innermost open span, and each span's own folded value is its
     exclusive ("self") time — wall minus child spans minus phases. *)
  type open_span = {
    os_id : int;
    os_label : string;
    os_path : string list; (* root-first, ending in os_label *)
    os_wall0 : int option;
    mutable os_ios : int;
    mutable os_child_ios : int;
    mutable os_child_wall : int;
    mutable os_self_phase : int;
    os_phases : (string, int) Hashtbl.t;
  }

  type snode = {
    mutable sn_value : int;
    mutable sn_ios : int;
    mutable sn_count : int;
  }

  let tbl_add tbl key v =
    let cur = Option.value ~default:0 (Hashtbl.find_opt tbl key) in
    Hashtbl.replace tbl key (cur + v)

  let analyze_channel ic =
    let aggs : (string, agg) Hashtbl.t = Hashtbl.create 16 in
    let agg_of label =
      match Hashtbl.find_opt aggs label with
      | Some a -> a
      | None ->
          let a =
            {
              a_count = 0;
              a_total = 0;
              a_wall = 0;
              a_phases = Hashtbl.create 8;
              a_histo = Histogram.create ();
            }
          in
          Hashtbl.add aggs label a;
          a
    in
    (* folded stacks keyed by the ";"-joined path *)
    let snodes : (string, snode) Hashtbl.t = Hashtbl.create 16 in
    let snode_of key =
      match Hashtbl.find_opt snodes key with
      | Some n -> n
      | None ->
          let n = { sn_value = 0; sn_ios = 0; sn_count = 0 } in
          Hashtbl.add snodes key n;
          n
    in
    let join path = String.concat ";" path in
    let stack = ref [] in
    let has_wall = ref false in
    let fail lineno msg =
      failwith (Printf.sprintf "Obs.profile: line %d: %s" lineno msg)
    in
    let rec go lineno =
      match input_line ic with
      | exception End_of_file -> ()
      | line when String.trim line = "" -> go (lineno + 1)
      | line ->
          let line = String.trim line in
          (match parse_line lineno line with
          | Span_begin ->
              let id =
                match field_int line "page" with
                | Some id -> id
                | None -> fail lineno "span_begin without span id"
              in
              let label =
                Option.value ~default:"" (field_string line "label")
              in
              let path =
                match !stack with
                | [] -> [ label ]
                | top :: _ -> top.os_path @ [ label ]
              in
              stack :=
                {
                  os_id = id;
                  os_label = label;
                  os_path = path;
                  os_wall0 = field_int line "wall_ns";
                  os_ios = 0;
                  os_child_ios = 0;
                  os_child_wall = 0;
                  os_self_phase = 0;
                  os_phases = Hashtbl.create 8;
                }
                :: !stack
          | Span_end -> (
              let id =
                match field_int line "page" with
                | Some id -> id
                | None -> fail lineno "span_end without span id"
              in
              match !stack with
              | [] -> fail lineno "span_end with no open span"
              | top :: rest ->
                  if top.os_id <> id then
                    fail lineno
                      (Printf.sprintf "span nesting mismatch: open %d, end %d"
                         top.os_id id);
                  stack := rest;
                  let wall =
                    match (top.os_wall0, field_int line "wall_ns") with
                    | Some w0, Some w1 ->
                        has_wall := true;
                        max 0 (w1 - w0)
                    | _ -> 0
                  in
                  let a = agg_of top.os_label in
                  a.a_count <- a.a_count + 1;
                  a.a_total <- a.a_total + top.os_ios;
                  a.a_wall <- a.a_wall + wall;
                  Hashtbl.iter (fun c ns -> tbl_add a.a_phases c ns) top.os_phases;
                  Histogram.add a.a_histo top.os_ios;
                  let self_wall =
                    max 0 (wall - top.os_child_wall - top.os_self_phase)
                  in
                  let n = snode_of (join top.os_path) in
                  n.sn_value <- n.sn_value + self_wall;
                  n.sn_ios <- n.sn_ios + (top.os_ios - top.os_child_ios);
                  n.sn_count <- n.sn_count + 1;
                  (match rest with
                  | [] -> ()
                  | parent :: _ ->
                      parent.os_child_wall <- parent.os_child_wall + wall;
                      (* inclusive counting means the child's I/Os are
                         already in the parent's os_ios *)
                      parent.os_child_ios <- parent.os_child_ios + top.os_ios))
          | Phase -> (
              match (field_string line "label", field_int line "ns") with
              | Some label, Some ns ->
                  let cat = phase_category label in
                  List.iter (fun os -> tbl_add os.os_phases cat ns) !stack;
                  let path =
                    match !stack with
                    | [] -> [ label ]
                    | top :: _ ->
                        top.os_self_phase <- top.os_self_phase + ns;
                        top.os_path @ [ label ]
                  in
                  let n = snode_of (join path) in
                  n.sn_value <- n.sn_value + ns;
                  n.sn_count <- n.sn_count + 1
              | _ -> ())
          | Read | Write | Write_back | Journal_write | Checkpoint ->
              List.iter (fun os -> os.os_ios <- os.os_ios + 1) !stack
          | Alloc | Free | Cache_hit | Evict | Pin | Fault | Retry | Give_up
          | Corrupt ->
              ());
          go (lineno + 1)
    in
    go 1;
    let rows =
      Hashtbl.fold
        (fun label a acc ->
          let cat_sum = Hashtbl.fold (fun _ ns s -> s + ns) a.a_phases 0 in
          let phases =
            if (not !has_wall) && cat_sum = 0 then []
            else
              List.map
                (fun cat ->
                  if cat = "other" then
                    (cat, max 0 (a.a_wall - cat_sum))
                  else
                    (cat, Option.value ~default:0 (Hashtbl.find_opt a.a_phases cat)))
                phase_categories
          in
          {
            label;
            count = a.a_count;
            total_ios = a.a_total;
            mean =
              (if a.a_count = 0 then 0.
               else float_of_int a.a_total /. float_of_int a.a_count);
            p99 = Histogram.p99 a.a_histo;
            max = Histogram.max_value a.a_histo;
            wall_ns = a.a_wall;
            phases;
          }
          :: acc)
        aggs []
      |> List.sort (fun a b ->
             match compare b.total_ios a.total_ios with
             | 0 -> compare a.label b.label
             | c -> c)
    in
    let stacks =
      Hashtbl.fold
        (fun key n acc ->
          {
            stack_path = String.split_on_char ';' key;
            stack_value = n.sn_value;
            stack_ios = n.sn_ios;
            stack_count = n.sn_count;
          }
          :: acc)
        snodes []
      |> List.sort (fun a b -> compare a.stack_path b.stack_path)
    in
    { rows; stacks; has_wall = !has_wall }

  let analyze_file path =
    let ic = open_in path in
    Fun.protect ~finally:(fun () -> close_in ic) (fun () -> analyze_channel ic)

  let of_channel ic = (analyze_channel ic).rows
  let of_file path = (analyze_file path).rows

  (* Label column width: at least the historical 18 (keeps old goldens
     byte-identical) and wide enough for the longest label so long span
     names (e.g. ext_pst3.query_3sided) no longer misalign columns. *)
  let label_width rows =
    List.fold_left (fun acc r -> max acc (String.length r.label)) 18 rows

  let pp ppf rows =
    let w = label_width rows in
    Format.fprintf ppf "%-*s %8s %10s %8s %6s %6s@\n" w "span" "count"
      "total-io" "mean" "p99" "max";
    List.iter
      (fun r ->
        Format.fprintf ppf "%-*s %8d %10d %8.1f %6d %6d@\n" w r.label r.count
          r.total_ios r.mean r.p99 r.max)
      rows

  (* The wall-clock attribution table: one row per span label, the span's
     total wall time decomposed into the phase categories. The column
     sums equal [wall] by construction ("other" is the remainder). *)
  let pp_phases ppf rows =
    let w = label_width rows in
    Format.fprintf ppf "%-*s %8s %10s" w "span" "count" "wall";
    List.iter (fun cat -> Format.fprintf ppf " %10s" cat) phase_categories;
    Format.fprintf ppf "@\n";
    List.iter
      (fun r ->
        if r.phases <> [] then begin
          Format.fprintf ppf "%-*s %8d %10s" w r.label r.count
            (ns_string r.wall_ns);
          List.iter
            (fun cat ->
              let ns = Option.value ~default:0 (List.assoc_opt cat r.phases) in
              Format.fprintf ppf " %10s" (ns_string ns))
            phase_categories;
          Format.fprintf ppf "@\n"
        end)
      rows

  (* Inclusive total of a folded node: its own self value plus every
     deeper frame's. Traces are small; the quadratic scan is fine. *)
  let rec is_prefix p q =
    match (p, q) with
    | [], _ -> true
    | x :: p', y :: q' -> x = y && is_prefix p' q'
    | _ :: _, [] -> false

  let inclusive stacks path =
    List.fold_left
      (fun (v, ios) s ->
        if is_prefix path s.stack_path then
          (v + s.stack_value, ios + s.stack_ios)
        else (v, ios))
      (0, 0) stacks

  (* Heaviest-child chain from each root span label, by wall time when
     available, by I/O count otherwise. *)
  let critical_paths { stacks; has_wall; _ } =
    let value (v, ios) = if has_wall then v else ios in
    let roots =
      List.sort_uniq compare
        (List.filter_map
           (fun s -> match s.stack_path with r :: _ -> Some r | [] -> None)
           stacks)
    in
    let children path =
      List.sort_uniq compare
        (List.filter_map
           (fun s ->
             let rec strip p q =
               match (p, q) with
               | [], y :: _ -> Some y
               | x :: p', y :: q' when x = y -> strip p' q'
               | _ -> None
             in
             strip path s.stack_path)
           stacks)
    in
    let rec chain path acc =
      let kids = children path in
      match
        List.sort
          (fun a b ->
            compare
              (value (inclusive stacks (path @ [ b ])))
              (value (inclusive stacks (path @ [ a ]))))
          kids
      with
      | [] -> List.rev acc
      | best :: _ ->
          let p = path @ [ best ] in
          chain p ((best, value (inclusive stacks p)) :: acc)
    in
    List.map
      (fun r ->
        let total = value (inclusive stacks [ r ]) in
        (r, total, chain [ r ] []))
      roots
    |> List.sort (fun (_, a, _) (_, b, _) -> compare b a)

  let pp_critical ppf analysis =
    let unit v = if analysis.has_wall then ns_string v else string_of_int v in
    List.iter
      (fun (root, total, chain) ->
        Format.fprintf ppf "critical path: %s (%s)" root (unit total);
        List.iter
          (fun (frame, v) ->
            let pct =
              if total > 0 then 100. *. float_of_int v /. float_of_int total
              else 0.
            in
            Format.fprintf ppf " -> %s (%s, %.0f%%)" frame (unit v) pct)
          chain;
        Format.fprintf ppf "@\n")
      (critical_paths analysis)

  (* Collapsed-stack ("folded") export for flamegraph tooling: one line
     per unique frame path, value = self wall-ns (self I/O count for
     tick-only traces). *)
  let write_folded oc { stacks; has_wall; _ } =
    List.iter
      (fun s ->
        let v = if has_wall then s.stack_value else s.stack_ios in
        if v > 0 then
          Printf.fprintf oc "%s %d\n" (String.concat ";" s.stack_path) v)
      stacks
end

(* ------------------------------------------------------------------ *)
(* Slow-operation log                                                 *)
(* ------------------------------------------------------------------ *)

(* A sink-side watcher: tee {!Slow_log.sink} beside the trace sink and
   every span whose wall time meets the threshold is dumped as one JSON
   line with its inclusive I/O count and phase breakdown. Purely an
   observer — it never affects control flow or the trace itself. *)
module Slow_log = struct
  type frame = {
    sl_label : string;
    sl_wall0 : int option;
    mutable sl_ios : int;
    sl_phases : (string, int) Hashtbl.t;
  }

  type t = {
    oc : out_channel;
    threshold_ns : int;
    mutable frames : frame list;
    mutable logged : int;
  }

  let create oc ~threshold_ns = { oc; threshold_ns; frames = []; logged = 0 }

  let logged t = t.logged

  let phases_json tbl =
    let fields =
      List.filter_map
        (fun cat ->
          match Hashtbl.find_opt tbl cat with
          | Some ns when ns > 0 -> Some (Printf.sprintf "\"%s\":%d" cat ns)
          | _ -> None)
        phase_categories
    in
    "{" ^ String.concat "," fields ^ "}"

  let write_line t line =
    output_string t.oc (line ^ "\n");
    Stdlib.flush t.oc;
    t.logged <- t.logged + 1

  let on_event t e =
    match e.kind with
    | Span_begin ->
        t.frames <-
          {
            sl_label = e.label;
            sl_wall0 = e.wall_ns;
            sl_ios = 0;
            sl_phases = Hashtbl.create 8;
          }
          :: t.frames
    | Span_end -> (
        match t.frames with
        | [] -> ()
        | top :: rest ->
            t.frames <- rest;
            (match (top.sl_wall0, e.wall_ns) with
            | Some w0, Some w1 when w1 - w0 >= t.threshold_ns ->
                write_line t
                  (Printf.sprintf
                     "{\"label\":\"%s\",\"wall_ns\":%d,\"ios\":%d,\"phases\":%s}"
                     (escape top.sl_label) (w1 - w0) top.sl_ios
                     (phases_json top.sl_phases))
            | _ -> ()))
    | Phase ->
        let ns = Option.value ~default:0 (List.assoc_opt "ns" e.args) in
        let cat = phase_category e.label in
        List.iter
          (fun f ->
            let cur = Option.value ~default:0 (Hashtbl.find_opt f.sl_phases cat) in
            Hashtbl.replace f.sl_phases cat (cur + ns))
          t.frames
    | Read | Write | Write_back | Journal_write | Checkpoint ->
        List.iter (fun f -> f.sl_ios <- f.sl_ios + 1) t.frames
    | Alloc | Free | Cache_hit | Evict | Pin | Fault | Retry | Give_up | Corrupt
      ->
        ()

  let sink t = custom (on_event t)

  (* A span that stayed under the wall threshold can still violate its
     analytical bound; the CLI reports those here too. *)
  let note_violation t ~label ~measured ~predicted =
    write_line t
      (Printf.sprintf
         "{\"label\":\"%s\",\"violation\":\"cost_model\",\"measured\":%d,\"predicted\":%g}"
         (escape label) measured predicted)

  let close t = Stdlib.flush t.oc
end
