(** Analytical I/O bounds of the paper's theorems, as checkable data.

    PR 2's tracing records what each query {e did}; this module records
    what each query was {e allowed} to do. Every external structure in
    the repository claims a worst-case per-query I/O bound — Lemma 3.1
    and Theorems 3.2–3.5, 4.3–4.5 and 5.1 of the paper, plus the B+-tree
    baseline and the range-tree extension — and each bound here is a
    closed-form function of the instance size [n], the page size [b] and
    the query output size [t], with the theorem number and our measured
    constants captured as data (the paper states no constants; ours are
    calibrated against the fixed-seed regression workloads in
    [bench/regress.ml] and recorded in DESIGN.md §10).

    {!Conformance.check} turns one measured query into a pass/fail
    verdict ([measured / predicted <= 1]); {!Conformance.summary}
    accumulates worst ratios per structure — the measured-vs-theorem
    ledger column of EXPERIMENTS.md and the conformance half of the
    [bench-diff] CI gate. *)

(** The five 2-sided PST variants of §3–4 (mirrors
    [Pc_extpst.Ext_pst.variant], which this library cannot see). *)
type pst_variant = Iko | Basic | Segmented | Two_level | Multilevel

(** Cached/naive flavour of a structure ([Naive] doubles as the 3-sided
    [Baseline] mode). *)
type flavour = Naive | Cached

(** One entry per structure whose query cost a theorem bounds. *)
type structure =
  | Btree  (** B+-tree range search — the §1 1-D baseline *)
  | Pst2 of pst_variant  (** 2-sided queries: Lemma 3.1, Thms 3.2/4.3/4.4 *)
  | Pst3 of flavour  (** 3-sided queries: Thm 3.3 *)
  | Segtree of flavour  (** external segment tree stabbing: Thm 3.4 *)
  | Inttree of flavour  (** external interval tree stabbing: Thm 3.5 *)
  | Range2d  (** external range tree, general 4-sided (extension) *)
  | Stab_store  (** dynamic interval management via [KRV] (§1, §5) *)
  | Class_index  (** OODB class-hierarchy indexing via 3-sided (§1) *)
  | Dynamic2  (** fully dynamic 2-sided: Thm 5.1 *)

val name : structure -> string

(** [of_name s] inverts {!name} (used by [bench-diff] baselines). *)
val of_name : string -> structure option

(** Every structure, naive and cached flavours included. *)
val all : structure list

(** A query bound [c * shape(n, b, t) + a]: the theorem it restates and
    the constants we measured for it. *)
type bound = {
  theorem : string;  (** e.g. ["Thm 3.4"] *)
  shape : string;  (** human-readable, e.g. ["log_B n + t/B"] *)
  c : float;  (** multiplicative constant *)
  a : float;  (** additive constant *)
}

val query_bound : structure -> bound

(** [predicted_query_ios s ~n ~b ~t] is the bound's value: the maximum
    page I/Os a query with output size [t] may cost on an [n]-item
    instance with page size [b]. Always [>= 1]. *)
val predicted_query_ios : structure -> n:int -> b:int -> t:int -> float

(** [predicted_build_ios s ~n ~b] bounds the page I/Os of a bulk build
    (a constant number of writes per occupied page plus sorting-pass
    reads). *)
val predicted_build_ios : structure -> n:int -> b:int -> float

(** [predicted_storage_pages s ~n ~b] bounds the live pages the built
    structure may occupy — the space side of each theorem. *)
val predicted_storage_pages : structure -> n:int -> b:int -> float

(** {1 Conformance checking} *)

module Conformance : sig
  (** One measured query against its theorem. [ratio] is
      [measured /. predicted]; [within] is [ratio <= 1.] — the constants
      already live inside the prediction, so 1.0 is the line. *)
  type verdict = {
    structure : structure;
    n : int;
    b : int;
    t_out : int;  (** query output size *)
    measured : int;  (** page I/Os the query actually cost *)
    predicted : float;
    ratio : float;
    within : bool;
  }

  (** [check s ~n ~b ~t ~measured] compares one measured query against
      [predicted_query_ios s]. *)
  val check : structure -> n:int -> b:int -> t:int -> measured:int -> verdict

  val pp_verdict : Format.formatter -> verdict -> unit

  (** Accumulates verdicts and keeps the worst (highest-ratio) one per
      structure. *)
  type summary

  val summary : unit -> summary
  val record : summary -> verdict -> unit
  val count : summary -> int

  (** [worst s] is the highest-ratio verdict recorded, if any. *)
  val worst : summary -> verdict option

  (** [worst_ratio s] is [worst]'s ratio, [0.] when empty. *)
  val worst_ratio : summary -> float

  (** [by_structure s] lists the worst verdict per structure, sorted by
      decreasing ratio. *)
  val by_structure : summary -> (structure * verdict) list

  val violations : summary -> verdict list
  val all_within : summary -> bool

  (** [pp_summary] prints the per-structure worst-ratio table. *)
  val pp_summary : Format.formatter -> summary -> unit

  (** [report s] is {!pp_summary} as a string (CI artifact). *)
  val report : summary -> string
end
