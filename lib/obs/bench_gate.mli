(** The benchmark regression gate: schema'd baselines and the
    [bench-diff] comparison.

    [bench/regress.exe] measures a fixed-seed workload per structure and
    writes one {!entry} each into a baseline file ([BENCH_regress.json],
    committed to the repository). In [--diff] mode a fresh run is
    compared against the committed baseline with {!diff}: any mean or
    tail I/O count more than [tolerance] (default 10%) above the
    baseline, any conformance violation, and any baseline entry missing
    from the fresh run is a failure, and CI fails the job. Because every
    workload is seeded and runs with the buffer pool disabled, a clean
    tree reproduces the baseline {e exactly} — the tolerance is headroom
    for deliberate, reviewed drift, not noise. *)

(** One (experiment, structure) cell of a baseline: the per-query I/O
    distribution and the worst measured/predicted conformance ratio. *)
type entry = {
  experiment : string;  (** e.g. ["R2"] *)
  structure : string;  (** {!Cost_model.name} of the structure *)
  theorem : string;  (** the bound checked, e.g. ["Thm 3.4"] *)
  n : int;
  b : int;
  queries : int;  (** queries measured *)
  mean_ios : float;
  p50_ios : int;
  p99_ios : int;
  max_ios : int;
  worst_ratio : float;  (** worst measured/predicted over the queries *)
  within : bool;  (** all queries within the bound *)
  mean_us : float;
      (** mean wall-clock per query, µs — {e reported, never gated}:
          wall-clock is machine-dependent, so {!diff} ignores it *)
  p99_us : float;  (** p99 wall-clock per query, µs (reported only) *)
}

type baseline = { seed : int; entries : entry list }

(** Current schema tag, embedded in every file. v2 added the wall-clock
    columns; {!of_string} still accepts v1 files (wall-clock zero). *)
val schema : string

(** [times_us] are per-query wall-clock samples (µs), folded into the
    entry's [mean_us]/[p99_us]; omitted means no wall-clock was
    measured. *)
val entry_of_verdicts :
  ?times_us:float list ->
  experiment:string ->
  structure:Cost_model.structure ->
  histo:Histogram.t ->
  summary:Cost_model.Conformance.summary ->
  n:int ->
  b:int ->
  unit ->
  entry

val to_json : baseline -> string

(** [of_string s] parses a {!to_json} baseline; [Error msg] on schema
    mismatch or malformed entries. *)
val of_string : string -> (baseline, string) result

val of_file : string -> (baseline, string) result

(** {1 The gate} *)

type failure =
  | Missing of string  (** baseline entry absent from the fresh run *)
  | Regression of {
      key : string;
      metric : string;  (** ["mean_ios"], ["p99_ios"], ["max_ios"] *)
      baseline : float;
      current : float;
    }
  | Violation of string  (** conformance violation in the fresh run *)

type report = {
  compared : int;  (** entries matched between baseline and current *)
  added : string list;  (** current entries with no baseline (informational) *)
  failures : failure list;
}

val passed : report -> bool

(** [diff ?tolerance ~baseline ~current ()] applies the gate rules.
    [tolerance] (default [0.10]) is the allowed relative I/O growth. *)
val diff :
  ?tolerance:float -> baseline:baseline -> current:baseline -> unit -> report

val pp_failure : Format.formatter -> failure -> unit
val pp_report : Format.formatter -> report -> unit
