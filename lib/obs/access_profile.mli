(** Per-structure access profiles and the global cache advisor, built on
    {!Reuse_dist}.

    Where {!Reuse_dist} answers "how would this stream behave at any
    cache size", this layer answers the two questions beside it: {e
    what} does each structure touch (per-level touch counts, hot pages,
    working-set size), and {e how should a shared frame budget be
    split} across the live structures.

    {b Levels.} The event stream carries no tree depth, but every query
    entry point opens an {!Obs} span and a path-cached structure reads
    root-to-leaf inside it — so the ordinal of a touch within the
    innermost open span is the page's level for tree descents (level 0
    = root). The per-level table splits hits from misses, making the
    paper's premise visible directly: upper levels should hit, the
    fringe should miss.

    {b Working set.} Distinct pages referenced in the last [window]
    references (default 256), per source, tracked as current and peak —
    the gauge [serve-metrics] exports.

    {b Advisor.} Given the per-source MRCs and a global frame budget,
    {!advise} assigns frames one at a time to the source whose curve
    gains the most hits from its next frame (marginal-miss-rate
    descent), then keeps the better of that split and the naive even
    split — greedy is optimal for concave curves and never reported
    when it loses to even on a non-concave one. Predicted hit counts
    come straight off the curves, so "predicted vs actual" is a
    comparison the caller can make after running the advised split.

    Determinism contract: like {!Reuse_dist}, this layer only listens;
    attaching it never changes I/O counts or traces. *)

type t

(** [create ()] builds a profiler with its own private {!Reuse_dist.t}.
    [window] is the working-set window in references, [top_k] how many
    hot pages each profile retains. *)
val create : ?window:int -> ?top_k:int -> unit -> t

(** The underlying reuse-distance profiler (for {!Reuse_dist.mrcs},
    tables, JSON). *)
val reuse : t -> Reuse_dist.t

(** [observe t ev] folds one event into both the reuse profiler and the
    profile tables. *)
val observe : t -> Obs.event -> unit

val sink : t -> Obs.sink

(** [attach t obs] tees onto [obs]'s current sink, like
    {!Metrics.attach}. *)
val attach : t -> Obs.t -> unit

val reset : t -> unit

(** {1 Profiles} *)

type level = {
  lv_depth : int;  (** touch ordinal within the innermost open span *)
  lv_hits : int;  (** [Cache_hit] touches at this depth *)
  lv_misses : int;  (** [Read] (device) touches at this depth *)
}

type profile = {
  p_source : string;
  p_reads : int;  (** read references ([Read] + [Cache_hit]) *)
  p_hits : int;  (** of which [Cache_hit] *)
  p_distinct : int;  (** pages currently on the shadow stack *)
  p_levels : level list;  (** depth-ascending; all-zero rows omitted *)
  p_hot : (int * int) list;  (** [(page, touches)], hottest first, top-K *)
  p_ws_current : int;  (** distinct pages in the last [window] refs *)
  p_ws_peak : int;
}

(** Snapshot per-source profiles, in source-id order. *)
val profiles : t -> profile list

(** Current sliding-window working set of one source (0 if unseen). *)
val working_set : t -> int -> int

val pp_profiles : Format.formatter -> profile list -> unit
val profiles_json : t -> string

(** {1 The advisor} *)

type alloc = {
  a_source : string;
  a_frames : int;
  a_accesses : int;  (** read references backing the prediction *)
  a_pred_hits : int;  (** {!Reuse_dist.hits_at} the assigned frames *)
}

val alloc_hit_ratio : alloc -> float

type advice = {
  budget : int;
  allocs : alloc list;  (** recommended split, source order *)
  even : alloc list;  (** naive even split of the same budget *)
}

(** Predicted misses of a split = sum of [accesses - pred_hits]. *)
val predicted_misses : alloc list -> int

(** [advise curves ~budget] partitions [budget] frames across the given
    per-source curves (see the algorithm note above). Raises
    [Invalid_argument] on a negative budget or no curves. *)
val advise : (string * Reuse_dist.mrc) list -> budget:int -> advice

val pp_advice : Format.formatter -> advice -> unit
val advice_json : advice -> string
