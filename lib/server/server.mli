(** The concurrent session server (DESIGN.md §14).

    [start ()] binds a loopback TCP socket and spawns N worker
    {e domains}; each accepted connection is a session served to
    completion by one worker, so K concurrent sessions on K workers run
    genuinely in parallel. Sessions speak the {!Wire} frame protocol;
    payloads are one-line text requests:

    {v
    ping                  -> ok pong
    open NAME             -> ok opened NAME size=K   (creates on demand)
    insert X Y ID         -> ok
    delete ID             -> ok true | ok false
    krange LO HI          -> ok pairs x1:y1,x2:y2,...
    q3 XL XR YB           -> ok ids id1,id2,...
    stats                 -> ok version=V checkpoints=C size=S
    close                 -> ok bye                  (ends the session)
    shutdown              -> ok shutting down        (stops the server)
    anything else         -> err <reason>            (session continues)
    v}

    Stores are {!Pc_conc.Shared_store}s named by [open]; all sessions
    that open the same name share one store, with lock-free snapshot
    reads and a serialized writer. Malformed requests get [err]
    replies; an unframeable stream (oversized length prefix) or an
    expired idle timeout gets a final [err] frame and the session is
    dropped.

    {b Fault handling} (DESIGN.md §15): a request never kills more than
    itself. A client that disconnects between request and reply costs
    only its session (EPIPE/ECONNRESET on the reply are absorbed); an
    exception escaping evaluation becomes [err internal ...]; a store
    whose circuit breaker is open refuses mutations with
    [err degraded ...] while queries keep serving the last published
    snapshot; with [max_inflight] set, excess concurrent requests are
    shed at the door with [err busy]; with [request_deadline] set, an
    over-deadline evaluation replies [err deadline ...] (the effects of
    a mutation may still have applied — the reply says so). [shutdown]
    drains: workers stop accepting, in-flight sessions get one final
    frame after their current request, and {!wait} checkpoints every
    store as the durability barrier before returning. *)

type t

(** [start ()] binds and serves. [port] 0 picks an ephemeral port (read
    it back with {!port}); [workers] is the domain count (default 4);
    [idle_timeout] (default 5s) bounds how long a silent connection
    holds a worker; [b]/[checkpoint_every] configure created stores;
    [max_inflight] bounds concurrently evaluated requests (default: no
    bound) — control verbs ping/close/shutdown are exempt;
    [request_deadline] (seconds) is the soft per-request deadline
    (default: none); [make_store] overrides how [open] builds a missing
    store (default: an empty {!Pc_conc.Shared_store} with a fresh
    circuit breaker and no WAL). *)
val start :
  ?port:int ->
  ?workers:int ->
  ?idle_timeout:float ->
  ?b:int ->
  ?checkpoint_every:int ->
  ?max_inflight:int ->
  ?request_deadline:float ->
  ?make_store:(name:string -> Pc_conc.Shared_store.t) ->
  unit ->
  t

val port : t -> int

(** Sessions accepted since start. *)
val sessions_served : t -> int

(** Requests refused with [err busy] by the overload gate. *)
val shed_requests : t -> int

(** The server is draining: a client sent [shutdown] or
    {!request_drain} was called. *)
val draining : t -> bool

(** [request_drain t] starts a graceful drain, as the [shutdown] verb
    does: stop accepting, finish in-flight requests, close sessions
    with a final frame. Follow with {!wait}. *)
val request_drain : t -> unit

(** [stop t] signals every worker, joins them, and closes the socket.
    In-flight sessions finish their current request. *)
val stop : t -> unit

(** [request_stop t] only raises the stop flag — safe from a signal
    handler; follow with {!wait}. *)
val request_stop : t -> unit

(** [wait t] joins the workers (returns once the server has stopped —
    via {!stop}, {!request_stop}, or a client's [shutdown] verb) and
    closes the socket. *)
val wait : t -> unit

(** A minimal blocking client for tests and CLI probes. *)
module Client : sig
  type conn

  val connect : ?host:string -> port:int -> unit -> conn
  val request : conn -> string -> (string, Wire.error) result

  (** Sends [close] (best effort) and closes the socket. *)
  val close : conn -> unit
end
