(** Length-prefixed text frames — the session server's wire format.

    One frame is a 4-byte big-endian payload length followed by that
    many bytes of text. Declared lengths above {!max_frame} (or
    negative, i.e. the high bit set) are rejected before any
    allocation. All read-side failure modes are values, not
    exceptions: clean or mid-frame disconnects are [Closed], an
    expired [SO_RCVTIMEO] is [Timeout]. *)

(** Maximum payload bytes per frame (1 MiB). *)
val max_frame : int

type error =
  | Closed
  | Timeout
  | Oversized of int  (** the declared length *)

val error_to_string : error -> string

(** [read_frame fd] reads one complete frame. *)
val read_frame : Unix.file_descr -> (string, error) result

(** [write_frame fd s] writes one frame, retrying partial writes. *)
val write_frame : Unix.file_descr -> string -> unit

(** [request fd s] = write then read one reply (client side). *)
val request : Unix.file_descr -> string -> (string, error) result
