(* The session server's wire format: length-prefixed text frames.

   Every message — request or reply — is one frame: a 4-byte big-endian
   payload length, then that many bytes of UTF-8 text. Text payloads
   keep the protocol greppable (`printf '\x00\x00\x00\x04ping' | nc`)
   while the prefix makes framing unambiguous under pipelining and
   partial reads. The length is bounded: anything above [max_frame]
   is a protocol error, not an allocation request — a client cannot
   make the server allocate 2 GiB by sending 4 bytes. *)

let max_frame = 1 lsl 20 (* 1 MiB of payload is far above any reply *)

type error =
  | Closed (* orderly EOF before or inside a frame *)
  | Timeout (* SO_RCVTIMEO expired mid-read (idle or stalled peer) *)
  | Oversized of int (* declared length above [max_frame] or negative *)

let error_to_string = function
  | Closed -> "connection closed"
  | Timeout -> "receive timeout"
  | Oversized n -> Printf.sprintf "oversized frame (%d bytes declared)" n

(* [read_exactly fd buf] distinguishes the three ways a socket read
   stops early: clean EOF, receive-timeout (EAGAIN/EWOULDBLOCK from
   SO_RCVTIMEO), and everything else (reset, shutdown) folded into
   [Closed]. A mid-request disconnect therefore surfaces as an error
   result, never an exception or a short buffer. *)
let read_exactly fd buf =
  let len = Bytes.length buf in
  let rec go off =
    if off >= len then Ok ()
    else
      match Unix.read fd buf off (len - off) with
      | 0 -> Error Closed
      | n -> go (off + n)
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          Error Timeout
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
      | exception Unix.Unix_error (_, _, _) -> Error Closed
      | exception Sys_blocked_io -> Error Timeout
  in
  go 0

let read_frame fd =
  let hdr = Bytes.create 4 in
  match read_exactly fd hdr with
  | Error _ as e -> e
  | Ok () ->
      let n = Int32.to_int (Bytes.get_int32_be hdr 0) in
      if n < 0 || n > max_frame then Error (Oversized n)
      else begin
        let payload = Bytes.create n in
        match read_exactly fd payload with
        | Error _ as e -> e
        | Ok () -> Ok (Bytes.unsafe_to_string payload)
      end

let write_frame fd s =
  let n = String.length s in
  if n > max_frame then invalid_arg "Wire.write_frame: payload too large";
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string s 0 buf 4 n;
  let rec go off =
    if off < Bytes.length buf then
      match Unix.write fd buf off (Bytes.length buf - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

(* Client-side conveniences (tests, CLI probes). *)
let request fd s =
  write_frame fd s;
  read_frame fd
