(* The session server: N worker domains accepting sessions over the
   length-prefixed wire protocol, all serving shared stores.

   Workers are domains, not systhreads — systhreads in one domain never
   run in parallel, and parallel query service is the point. All
   workers poll the same non-blocking listening socket ([select] with a
   short timeout so the stop flag is honored promptly); whoever's
   [accept] wins serves that session to completion. Sessions are
   plain request/reply over {!Wire} frames with a receive timeout, so
   an idle or half-open client costs one worker at most
   [idle_timeout] seconds — the serve-metrics lesson.

   Queries run on whichever worker domain holds the session;
   Shared_store readers are lock-free, so K sessions on K workers
   query in parallel, while inserts/deletes serialize on each store's
   single writer. *)

module Point = Pc_util.Point
module Shared_store = Pc_conc.Shared_store

type t = {
  sock : Unix.file_descr;
  port : int;
  stop_flag : bool Atomic.t;
  draining : bool Atomic.t;
      (* graceful shutdown: stop accepting, finish in-flight requests,
         close sessions with a final frame, fsync stores, exit *)
  stores : (string, Shared_store.t) Hashtbl.t;
  registry : Mutex.t; (* guards [stores] *)
  mutable workers : unit Domain.t array;
  sessions : int Atomic.t; (* total sessions served, for smoke tests *)
  inflight : int Atomic.t; (* requests being evaluated right now *)
  shed : int Atomic.t; (* requests refused with [err busy] *)
  max_inflight : int option;
  request_deadline : float option;
  make_store : name:string -> Shared_store.t;
  idle_timeout : float;
}

let port t = t.port
let sessions_served t = Atomic.get t.sessions
let shed_requests t = Atomic.get t.shed
let draining t = Atomic.get t.draining

let valid_name n =
  n <> ""
  && String.length n <= 64
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       n

let store_of t name =
  Mutex.protect t.registry (fun () ->
      match Hashtbl.find_opt t.stores name with
      | Some s -> s
      | None ->
          let s = t.make_store ~name in
          Hashtbl.replace t.stores name s;
          s)

(* ------------------------------------------------------------------ *)
(* Request evaluation                                                 *)
(* ------------------------------------------------------------------ *)

type session = { mutable current : (string * Shared_store.t) option }

let ints_reply l = String.concat "," (List.map string_of_int l)

let pairs_reply l =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%d:%d" k v) l)

(* [eval_words] returns the reply payload and whether the session goes
   on. Every parse failure is an [err ...] reply, never a dropped
   connection — a malformed request must not kill the session. *)
let eval_words t session words =
  let int_of w = int_of_string_opt w in
  let with_store k =
    match session.current with
    | None -> ("err no store open (send: open NAME)", true)
    | Some (_, s) -> k s
  in
  match words with
  | [ "ping" ] -> ("ok pong", true)
  | [ "open"; name ] ->
      if valid_name name then begin
        let s = store_of t name in
        session.current <- Some (name, s);
        (Printf.sprintf "ok opened %s size=%d" name (Shared_store.size s), true)
      end
      else ("err invalid store name", true)
  | [ "insert"; x; y; id ] -> (
      match (int_of x, int_of y, int_of id) with
      | Some x, Some y, Some id ->
          with_store (fun s ->
              Shared_store.insert s (Point.make ~x ~y ~id);
              ("ok", true))
      | _ -> ("err insert wants: insert X Y ID", true))
  | [ "delete"; id ] -> (
      match int_of id with
      | Some id ->
          with_store (fun s ->
              (Printf.sprintf "ok %b" (Shared_store.delete s id), true))
      | None -> ("err delete wants: delete ID", true))
  | [ "krange"; lo; hi ] -> (
      match (int_of lo, int_of hi) with
      | Some lo, Some hi ->
          with_store (fun s ->
              ( "ok pairs " ^ pairs_reply (Shared_store.krange s ~lo ~hi),
                true ))
      | _ -> ("err krange wants: krange LO HI", true))
  | [ "q3"; xl; xr; yb ] -> (
      match (int_of xl, int_of xr, int_of yb) with
      | Some xl, Some xr, Some yb ->
          with_store (fun s ->
              let ids =
                Shared_store.query3 s ~xl ~xr ~yb
                |> List.map Point.id |> List.sort compare
              in
              ("ok ids " ^ ints_reply ids, true))
      | _ -> ("err q3 wants: q3 XL XR YB", true))
  | [ "stats" ] ->
      with_store (fun s ->
          let st = Shared_store.stats s in
          let breaker =
            match Shared_store.breaker s with
            | None -> "none"
            | Some br -> Pc_conc.Breaker.state_name (Pc_conc.Breaker.state br)
          in
          ( Printf.sprintf "ok version=%d checkpoints=%d size=%d breaker=%s"
              st.Shared_store.st_version st.Shared_store.st_checkpoint
              st.Shared_store.st_size breaker,
            true ))
  | [ "close" ] -> ("ok bye", false)
  | [ "shutdown" ] ->
      (* the serve-metrics /quit precedent: loopback-only service, any
         client may stop it — what the CI smoke test uses. Shutdown is a
         drain: workers stop accepting, in-flight sessions get a final
         frame after their current request, [wait] then fsyncs stores. *)
      Atomic.set t.draining true;
      ("ok shutting down", false)
  | [] -> ("err empty request", true)
  | verb :: _ -> (Printf.sprintf "err unknown verb %S" verb, true)

(* The full request path laid over [eval_words]:

   - {b overload gate}: with [max_inflight] set, a request arriving
     while that many are already evaluating is shed with [err busy]
     before touching any store — bounded work in flight, load is shed at
     the door. Control verbs (ping/close/shutdown) are exempt so a
     loaded server can still be probed and drained.
   - {b typed degradation}: a store whose circuit breaker is open
     refuses mutations with {!Shared_store.Degraded}; the session sees
     [err degraded ...] and lives on.
   - {b exception floor}: no exception escapes a request — anything
     unexpected becomes [err internal ...]; the session (and above it
     the worker domain) never dies for one bad request.
   - {b soft deadline}: with [request_deadline] set, a request whose
     evaluation overran replies [err deadline ...] instead of its
     result. The work already happened — a mutation's effects may have
     applied — which is exactly the ambiguity a real timeout has; the
     reply says so. *)
let eval t session req =
  let words =
    String.split_on_char ' ' (String.trim req)
    |> List.filter (fun w -> w <> "")
  in
  let control =
    match words with
    | [ "ping" ] | [ "close" ] | [ "shutdown" ] -> true
    | _ -> false
  in
  let run () =
    try eval_words t session words with
    | Shared_store.Degraded m -> ("err degraded " ^ m, true)
    | e -> ("err internal " ^ Printexc.to_string e, true)
  in
  let deadlined () =
    match t.request_deadline with
    | None -> run ()
    | Some dl ->
        let t0 = Unix.gettimeofday () in
        let reply, continue = run () in
        let elapsed = Unix.gettimeofday () -. t0 in
        if elapsed > dl then
          ( Printf.sprintf
              "err deadline %.0fms exceeded (took %.0fms; a mutation's \
               effects may have applied)"
              (dl *. 1000.) (elapsed *. 1000.),
            continue )
        else (reply, continue)
  in
  if control then run ()
  else
    match t.max_inflight with
    | None -> deadlined ()
    | Some m ->
        let n = Atomic.fetch_and_add t.inflight 1 in
        Fun.protect
          ~finally:(fun () -> Atomic.decr t.inflight)
          (fun () ->
            if n >= m then begin
              Atomic.incr t.shed;
              ("err busy", true)
            end
            else deadlined ())

(* ------------------------------------------------------------------ *)
(* Sessions and workers                                               *)
(* ------------------------------------------------------------------ *)

let serve_session t fd =
  Atomic.incr t.sessions;
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.idle_timeout
   with Unix.Unix_error _ -> ());
  let session = { current = None } in
  (* A failed reply means the client is gone (EPIPE/ECONNRESET on a
     disconnect between request and reply, or any other socket error):
     report it so the loop drops just this session — the worker domain
     must never die for a vanished peer. *)
  let say s =
    match Wire.write_frame fd s with
    | () -> true
    | exception
        Unix.Unix_error
          ((Unix.EPIPE | Unix.ECONNRESET | Unix.ENOTCONN | Unix.EBADF), _, _)
      ->
        false
    | exception Unix.Unix_error _ -> false
  in
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else if Atomic.get t.draining then
      (* graceful drain: the in-flight request (if any) was answered;
         tell the client instead of vanishing *)
      ignore (say "err draining, closing")
    else
      match Wire.read_frame fd with
      | Ok req ->
          let reply, continue = eval t session req in
          if say reply && continue then loop ()
      | Error Wire.Closed -> ()
      | Error Wire.Timeout -> ignore (say "err idle timeout, closing")
      | Error (Wire.Oversized _ as e) ->
          (* the declared length is a lie or an attack; the stream can
             no longer be framed, so reply and drop the session *)
          ignore (say ("err " ^ Wire.error_to_string e))
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let worker_loop t =
  while not (Atomic.get t.stop_flag || Atomic.get t.draining) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        (* the listening socket is non-blocking: when several workers
           wake for one connection, the losers' accept just EAGAINs *)
        match Unix.accept t.sock with
        | fd, _ -> (
            (* belt and braces under the per-request exception floor:
               whatever escapes a session costs that session, never the
               worker domain *)
            try serve_session t fd
            with _ -> ( try Unix.close fd with Unix.Unix_error _ -> ()))
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start ?(port = 9470) ?(workers = 4) ?(idle_timeout = 5.0) ?(b = 8)
    ?(checkpoint_every = 512) ?max_inflight ?request_deadline ?make_store () =
  if workers < 1 then invalid_arg "Server.start: workers < 1";
  (match max_inflight with
  | Some m when m < 0 -> invalid_arg "Server.start: max_inflight < 0"
  | _ -> ());
  let make_store =
    match make_store with
    | Some f -> f
    | None ->
        fun ~name:_ ->
          Shared_store.create ~b ~checkpoint_every
            ~breaker:(Pc_conc.Breaker.create ()) []
  in
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  Unix.set_nonblock sock;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      sock;
      port;
      stop_flag = Atomic.make false;
      draining = Atomic.make false;
      stores = Hashtbl.create 8;
      registry = Mutex.create ();
      workers = [||];
      sessions = Atomic.make 0;
      inflight = Atomic.make 0;
      shed = Atomic.make 0;
      max_inflight;
      request_deadline;
      make_store;
      idle_timeout;
    }
  in
  t.workers <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let request_stop t = Atomic.set t.stop_flag true
let request_drain t = Atomic.set t.draining true

let wait t =
  Array.iter Domain.join t.workers;
  t.workers <- [||];
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  (* the drain's durability barrier: fold each store's overlay into a
     fresh checkpoint, which journals and fsyncs where a WAL is
     attached. A store whose breaker is open can't commit — skip it;
     its WAL already holds everything that was ever acknowledged. *)
  Mutex.protect t.registry (fun () ->
      Hashtbl.iter
        (fun _ s ->
          try Shared_store.checkpoint_now s with _ -> ())
        t.stores)

let stop t =
  request_stop t;
  wait t

(* ------------------------------------------------------------------ *)
(* A minimal blocking client, for tests and the CLI                   *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type conn = { fd : Unix.file_descr }

  let connect ?(host = "127.0.0.1") ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    { fd }

  let request c s = Wire.request c.fd s

  let close c =
    (match request c "close" with Ok _ | Error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
end
