(* The session server: N worker domains accepting sessions over the
   length-prefixed wire protocol, all serving shared stores.

   Workers are domains, not systhreads — systhreads in one domain never
   run in parallel, and parallel query service is the point. All
   workers poll the same non-blocking listening socket ([select] with a
   short timeout so the stop flag is honored promptly); whoever's
   [accept] wins serves that session to completion. Sessions are
   plain request/reply over {!Wire} frames with a receive timeout, so
   an idle or half-open client costs one worker at most
   [idle_timeout] seconds — the serve-metrics lesson.

   Queries run on whichever worker domain holds the session;
   Shared_store readers are lock-free, so K sessions on K workers
   query in parallel, while inserts/deletes serialize on each store's
   single writer. *)

module Point = Pc_util.Point
module Shared_store = Pc_conc.Shared_store

type t = {
  sock : Unix.file_descr;
  port : int;
  stop_flag : bool Atomic.t;
  stores : (string, Shared_store.t) Hashtbl.t;
  registry : Mutex.t; (* guards [stores] *)
  mutable workers : unit Domain.t array;
  sessions : int Atomic.t; (* total sessions served, for smoke tests *)
  b : int;
  checkpoint_every : int;
  idle_timeout : float;
}

let port t = t.port
let sessions_served t = Atomic.get t.sessions

let valid_name n =
  n <> ""
  && String.length n <= 64
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
         | _ -> false)
       n

let store_of t name =
  Mutex.protect t.registry (fun () ->
      match Hashtbl.find_opt t.stores name with
      | Some s -> s
      | None ->
          let s =
            Shared_store.create ~b:t.b ~checkpoint_every:t.checkpoint_every []
          in
          Hashtbl.replace t.stores name s;
          s)

(* ------------------------------------------------------------------ *)
(* Request evaluation                                                 *)
(* ------------------------------------------------------------------ *)

type session = { mutable current : (string * Shared_store.t) option }

let ints_reply l = String.concat "," (List.map string_of_int l)

let pairs_reply l =
  String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%d:%d" k v) l)

(* [eval] returns the reply payload and whether the session goes on.
   Every parse failure is an [err ...] reply, never a dropped
   connection — a malformed request must not kill the session. *)
let eval t session req =
  let words =
    String.split_on_char ' ' (String.trim req)
    |> List.filter (fun w -> w <> "")
  in
  let int_of w = int_of_string_opt w in
  let with_store k =
    match session.current with
    | None -> ("err no store open (send: open NAME)", true)
    | Some (_, s) -> k s
  in
  match words with
  | [ "ping" ] -> ("ok pong", true)
  | [ "open"; name ] ->
      if valid_name name then begin
        let s = store_of t name in
        session.current <- Some (name, s);
        (Printf.sprintf "ok opened %s size=%d" name (Shared_store.size s), true)
      end
      else ("err invalid store name", true)
  | [ "insert"; x; y; id ] -> (
      match (int_of x, int_of y, int_of id) with
      | Some x, Some y, Some id ->
          with_store (fun s ->
              Shared_store.insert s (Point.make ~x ~y ~id);
              ("ok", true))
      | _ -> ("err insert wants: insert X Y ID", true))
  | [ "delete"; id ] -> (
      match int_of id with
      | Some id ->
          with_store (fun s ->
              (Printf.sprintf "ok %b" (Shared_store.delete s id), true))
      | None -> ("err delete wants: delete ID", true))
  | [ "krange"; lo; hi ] -> (
      match (int_of lo, int_of hi) with
      | Some lo, Some hi ->
          with_store (fun s ->
              ( "ok pairs " ^ pairs_reply (Shared_store.krange s ~lo ~hi),
                true ))
      | _ -> ("err krange wants: krange LO HI", true))
  | [ "q3"; xl; xr; yb ] -> (
      match (int_of xl, int_of xr, int_of yb) with
      | Some xl, Some xr, Some yb ->
          with_store (fun s ->
              let ids =
                Shared_store.query3 s ~xl ~xr ~yb
                |> List.map Point.id |> List.sort compare
              in
              ("ok ids " ^ ints_reply ids, true))
      | _ -> ("err q3 wants: q3 XL XR YB", true))
  | [ "stats" ] ->
      with_store (fun s ->
          let st = Shared_store.stats s in
          ( Printf.sprintf "ok version=%d checkpoints=%d size=%d"
              st.Shared_store.st_version st.Shared_store.st_checkpoint
              st.Shared_store.st_size,
            true ))
  | [ "close" ] -> ("ok bye", false)
  | [ "shutdown" ] ->
      (* the serve-metrics /quit precedent: loopback-only service, any
         client may stop it — what the CI smoke test uses *)
      Atomic.set t.stop_flag true;
      ("ok shutting down", false)
  | [] -> ("err empty request", true)
  | verb :: _ -> (Printf.sprintf "err unknown verb %S" verb, true)

(* ------------------------------------------------------------------ *)
(* Sessions and workers                                               *)
(* ------------------------------------------------------------------ *)

let serve_session t fd =
  Atomic.incr t.sessions;
  (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO t.idle_timeout
   with Unix.Unix_error _ -> ());
  let session = { current = None } in
  let say s = try Wire.write_frame fd s with Unix.Unix_error _ -> () in
  let rec loop () =
    if Atomic.get t.stop_flag then ()
    else
      match Wire.read_frame fd with
      | Ok req ->
          let reply, continue = eval t session req in
          say reply;
          if continue then loop ()
      | Error Wire.Closed -> ()
      | Error Wire.Timeout -> say "err idle timeout, closing"
      | Error (Wire.Oversized _ as e) ->
          (* the declared length is a lie or an attack; the stream can
             no longer be framed, so reply and drop the session *)
          say ("err " ^ Wire.error_to_string e)
  in
  loop ();
  try Unix.close fd with Unix.Unix_error _ -> ()

let worker_loop t =
  while not (Atomic.get t.stop_flag) do
    match Unix.select [ t.sock ] [] [] 0.2 with
    | [], _, _ -> ()
    | _ -> (
        (* the listening socket is non-blocking: when several workers
           wake for one connection, the losers' accept just EAGAINs *)
        match Unix.accept t.sock with
        | fd, _ -> serve_session t fd
        | exception
            Unix.Unix_error
              ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
            ()
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start ?(port = 9470) ?(workers = 4) ?(idle_timeout = 5.0) ?(b = 8)
    ?(checkpoint_every = 512) () =
  if workers < 1 then invalid_arg "Server.start: workers < 1";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 64;
  Unix.set_nonblock sock;
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let t =
    {
      sock;
      port;
      stop_flag = Atomic.make false;
      stores = Hashtbl.create 8;
      registry = Mutex.create ();
      workers = [||];
      sessions = Atomic.make 0;
      b;
      checkpoint_every;
      idle_timeout;
    }
  in
  t.workers <- Array.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let request_stop t = Atomic.set t.stop_flag true

let wait t =
  Array.iter Domain.join t.workers;
  t.workers <- [||];
  try Unix.close t.sock with Unix.Unix_error _ -> ()

let stop t =
  request_stop t;
  wait t

(* ------------------------------------------------------------------ *)
(* A minimal blocking client, for tests and the CLI                   *)
(* ------------------------------------------------------------------ *)

module Client = struct
  type conn = { fd : Unix.file_descr }

  let connect ?(host = "127.0.0.1") ~port () =
    let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
    Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
    { fd }

  let request c s = Wire.request c.fd s

  let close c =
    (match request c "close" with Ok _ | Error _ -> ());
    try Unix.close c.fd with Unix.Unix_error _ -> ()
end
