open Pc_util
open Pc_pagestore

type mode = Naive | Cached

let pp_mode ppf = function
  | Naive -> Format.fprintf ppf "naive"
  | Cached -> Format.fprintf ppf "cached"

(* ------------------------------------------------------------------ *)
(* Persistent representation                                          *)
(* ------------------------------------------------------------------ *)

type cell =
  | Desc of desc
  | Iv of Ival.t
  | Tagged of { iv : Ival.t; src : int; src_total : int }

and desc = {
  node : int;
  depth : int;
  lo : int;  (* half-open cover interval [lo, hi) *)
  hi : int;
  mid : int;  (* route left iff q < mid (internal nodes only) *)
  left : int;  (* child node idx, -1 if leaf *)
  right : int;
  is_hop : bool;  (* carries a path cache: block root or leaf *)
  cl_len : int;
  cl : cell Blocked_list.t;  (* cover-list, sorted by lo *)
  cache : cell Blocked_list.t;  (* Tagged first-page copies (hops only) *)
  locals : cell Blocked_list.t;  (* leaf-local intervals, sorted by lo *)
}

type t = {
  mode : mode;
  pager : cell Pager.t;
  layout : Skeletal_layout.t option;  (* None iff empty *)
  block_pages : int array;
  size : int;
  height : int;
  total_allocations : int;
}

(* ------------------------------------------------------------------ *)
(* Construction                                                       *)
(* ------------------------------------------------------------------ *)

(* In-memory blueprint node. *)
type bnode = {
  b_idx : int;
  b_depth : int;
  b_lo : int;
  b_hi : int;
  b_mid : int;
  b_left : bnode option;
  b_right : bnode option;
  mutable b_cl : Ival.t list;
  mutable b_locals : Ival.t list;
}

(* Group the elementary-interval boundaries B per leaf (so the base tree
   has O(n/B) leaves — the paper's "leaf nodes of the skeletal tree"),
   then raise a balanced binary tree. *)
let build_tree ~b ivs =
  let boundaries =
    List.concat_map (fun iv -> [ Ival.lo iv; Ival.hi iv + 1 ]) ivs
    |> List.sort_uniq compare |> Array.of_list
  in
  let nb = Array.length boundaries in
  let nleaves = max 1 (Num_util.ceil_div nb b) in
  let start i =
    if i <= 0 then min_int
    else if i >= nleaves then max_int
    else boundaries.(i * b)
  in
  let counter = ref 0 in
  let rec make lo_leaf hi_leaf depth =
    (* subtree over leaves [lo_leaf, hi_leaf) *)
    let idx = !counter in
    incr counter;
    if hi_leaf - lo_leaf = 1 then
      {
        b_idx = idx;
        b_depth = depth;
        b_lo = start lo_leaf;
        b_hi = start (lo_leaf + 1);
        b_mid = start lo_leaf;
        b_left = None;
        b_right = None;
        b_cl = [];
        b_locals = [];
      }
    else begin
      let mid_leaf = (lo_leaf + hi_leaf) / 2 in
      let l = make lo_leaf mid_leaf (depth + 1) in
      let r = make mid_leaf hi_leaf (depth + 1) in
      {
        b_idx = idx;
        b_depth = depth;
        b_lo = l.b_lo;
        b_hi = r.b_hi;
        b_mid = r.b_lo;
        b_left = Some l;
        b_right = Some r;
        b_cl = [];
        b_locals = [];
      }
    end
  in
  let root = make 0 nleaves 0 in
  (root, !counter)

(* Standard segment-tree allocation over the grouped tree: an interval is
   stored at every maximal node its point-range covers; the pieces that
   end inside a leaf's range go to that leaf's local list. *)
let allocate root iv =
  let ilo = Ival.lo iv and ihi1 = Ival.hi iv + 1 in
  let covers n = ilo <= n.b_lo && n.b_hi <= ihi1 in
  let overlaps n = ilo < n.b_hi && n.b_lo < ihi1 in
  let rec go n =
    if covers n then n.b_cl <- iv :: n.b_cl
    else begin
      match (n.b_left, n.b_right) with
      | None, None -> n.b_locals <- iv :: n.b_locals
      | l, r ->
          (match l with Some l when overlaps l -> go l | _ -> ());
          (match r with Some r when overlaps r -> go r | _ -> ())
    end
  in
  if overlaps root then go root

let create_unjournaled ?(cache_capacity = 0) ?pool ?obs ?durability ~mode ~b
    ivs =
  if b < 2 then invalid_arg "Ext_seg.create: b < 2";
  let pager =
    Pager.create ~cache_capacity ?pool ?obs ?wal:durability
      ~obs_name:"ext_seg" ~page_capacity:b ()
  in
  Pc_obs.Obs.with_span obs ~kind:"build.segtree" @@ fun () ->
  match ivs with
  | [] ->
      {
        mode;
        pager;
        layout = None;
        block_pages = [||];
        size = 0;
        height = 0;
        total_allocations = 0;
      }
  | _ ->
      let root, num_nodes = build_tree ~b ivs in
      List.iter (allocate root) ivs;
      let nodes = Array.make num_nodes root in
      let rec index n =
        nodes.(n.b_idx) <- n;
        Option.iter index n.b_left;
        Option.iter index n.b_right
      in
      index root;
      let child side i =
        let n = nodes.(i) in
        Option.map
          (fun c -> c.b_idx)
          (match side with `L -> n.b_left | `R -> n.b_right)
      in
      let block_height = max 1 (Num_util.ilog2 (b + 1)) in
      let layout =
        Skeletal_layout.compute ~num_nodes ~root:0 ~left:(child `L)
          ~right:(child `R) ~block_height
      in
      let total_allocations = ref 0 in
      let descs = Array.make num_nodes None in
      (* DFS with the ancestor path to assemble hop caches: a leaf's cache
         covers the path nodes of its own block (itself included); a block
         root's cache covers the path nodes of its parent's block. Those
         windows tile every root-to-leaf path exactly once. *)
      let first_cl_entries (u : bnode) =
        let sorted = List.sort Ival.compare_lo u.b_cl in
        let k = min b (List.length sorted) in
        List.map
          (fun iv -> (iv, u.b_idx, k))
          (Pc_util.Blocked.take k sorted)
      in
      let rec visit n path =
        (* [path]: ancestors, innermost first. *)
        let is_leaf = n.b_left = None && n.b_right = None in
        let is_block_root =
          match path with
          | [] -> true
          | parent :: _ ->
              not (Skeletal_layout.same_block layout n.b_idx parent.b_idx)
        in
        let window =
          (if is_leaf then
             n
             :: List.filter
                  (fun u -> Skeletal_layout.same_block layout u.b_idx n.b_idx)
                  path
           else [])
          @
          match (is_block_root, path) with
          | true, parent :: _ ->
              List.filter
                (fun u ->
                  Skeletal_layout.same_block layout u.b_idx parent.b_idx)
                path
          | _ -> []
        in
        let window = if mode = Cached then window else [] in
        let cache_entries =
          List.concat_map first_cl_entries window
          |> List.map (fun (iv, src, src_total) -> Tagged { iv; src; src_total })
        in
        let cl_sorted = List.sort Ival.compare_lo n.b_cl in
        let locals_sorted = List.sort Ival.compare_lo n.b_locals in
        total_allocations := !total_allocations + List.length n.b_cl;
        descs.(n.b_idx) <-
          Some
            {
              node = n.b_idx;
              depth = n.b_depth;
              lo = n.b_lo;
              hi = n.b_hi;
              mid = n.b_mid;
              left = (match n.b_left with Some c -> c.b_idx | None -> -1);
              right = (match n.b_right with Some c -> c.b_idx | None -> -1);
              is_hop = is_leaf || is_block_root;
              cl_len = List.length cl_sorted;
              cl = Blocked_list.store pager (List.map (fun iv -> Iv iv) cl_sorted);
              cache = Blocked_list.store pager cache_entries;
              locals =
                Blocked_list.store pager
                  (List.map (fun iv -> Iv iv) locals_sorted);
            };
        Option.iter (fun c -> visit c (n :: path)) n.b_left;
        Option.iter (fun c -> visit c (n :: path)) n.b_right
      in
      visit root [];
      let block_pages =
        Array.init (Skeletal_layout.num_blocks layout) (fun blk ->
            Skeletal_layout.nodes_in layout blk
            |> List.map (fun i ->
                   match descs.(i) with Some d -> Desc d | None -> assert false)
            |> Array.of_list |> Pager.alloc pager)
      in
      let rec height n =
        1
        + max
            (match n.b_left with Some c -> height c | None -> 0)
            (match n.b_right with Some c -> height c | None -> 0)
      in
      {
        mode;
        pager;
        layout = Some layout;
        block_pages;
        size = List.length ivs;
        height = height root;
        total_allocations = !total_allocations;
      }

(* ------------------------------------------------------------------ *)
(* Queries                                                            *)
(* ------------------------------------------------------------------ *)

let cell_ival = function
  | Iv iv -> iv
  | Tagged { iv; _ } -> iv
  | Desc _ -> invalid_arg "Ext_seg: descriptor cell in an interval list"

let get_desc t ~stats ~blocks layout node =
  let page = t.block_pages.(Skeletal_layout.block_of layout node) in
  let descs =
    match Hashtbl.find_opt blocks page with
    | Some ds -> ds
    | None ->
        let cells = Pager.read t.pager page in
        stats.Query_stats.skeletal_reads <-
          stats.Query_stats.skeletal_reads + 1;
        let ds =
          Array.to_list cells
          |> List.filter_map (function Desc d -> Some d | _ -> None)
        in
        Hashtbl.add blocks page ds;
        ds
  in
  match List.find_opt (fun d -> d.node = node) descs with
  | Some d -> d
  | None -> invalid_arg "Ext_seg: descriptor missing from block"

let scan t ~stats ~kind ?(from = 0) list ~keep =
  let cells, reads =
    Blocked_list.scan_prefix_from t.pager list ~from ~keep:(fun c ->
        keep (cell_ival c))
  in
  (match kind with
  | `Data -> stats.Query_stats.data_reads <- stats.Query_stats.data_reads + reads
  | `Cache ->
      stats.Query_stats.cache_reads <- stats.Query_stats.cache_reads + reads);
  (cells, reads)

let stab t q =
  Pc_obs.Obs.with_span (Pager.obs t.pager) ~kind:"stab.segtree"
    ~result_args:(fun (_, st) -> Query_stats.to_args st)
  @@ fun () ->
  let stats = Query_stats.create () in
  match t.layout with
  | None -> ([], stats)
  | Some layout ->
      let blocks = Hashtbl.create 16 in
      let get = get_desc t ~stats ~blocks layout in
      let out = ref [] in
      let add ivs = out := List.rev_append ivs !out in
      let b = Pager.page_capacity t.pager in
      let note_waste reads kept =
        (* A read is wasteful unless it returned a full page of results
           (paper §2: "ones that return fewer than B intervals"). *)
        stats.wasteful_reads <- stats.wasteful_reads + max 0 (reads - (kept / b))
      in
      (* Descend to the leaf whose cover contains q. *)
      let rec descend acc d =
        let acc = d :: acc in
        if d.left < 0 then List.rev acc
        else if q < d.mid then descend acc (get d.left)
        else descend acc (get d.right)
      in
      let path = descend [] (get 0) in
      let by_idx = Hashtbl.create 16 in
      List.iter (fun d -> Hashtbl.replace by_idx d.node d) path;
      (match t.mode with
      | Naive ->
          (* Read every path node's cover-list directly: every interval in
             it contains q, but underfull lists make the read wasteful. *)
          List.iter
            (fun d ->
              let cells, reads = scan t ~stats ~kind:`Data d.cl ~keep:(fun _ -> true) in
              note_waste reads (List.length cells);
              add (List.map cell_ival cells))
            path
      | Cached ->
          (* Read each hop's coalesced cache, then continue into the tail
             of any cover-list whose first page the cache held whole. *)
          List.iter
            (fun d ->
              if d.is_hop then begin
                let cells, reads =
                  scan t ~stats ~kind:`Cache d.cache ~keep:(fun _ -> true)
                in
                note_waste reads (List.length cells);
                let continuations = Hashtbl.create 4 in
                List.iter
                  (function
                    | Tagged { iv; src; src_total } ->
                        add [ iv ];
                        if src_total = b && not (Hashtbl.mem continuations src)
                        then Hashtbl.add continuations src ()
                    | Iv _ | Desc _ ->
                        invalid_arg "Ext_seg: untagged cache cell")
                  cells;
                Hashtbl.iter
                  (fun src () ->
                    let u = Hashtbl.find by_idx src in
                    let cells, reads =
                      scan t ~stats ~kind:`Data ~from:1 u.cl ~keep:(fun _ ->
                          true)
                    in
                    note_waste reads (List.length cells);
                    add (List.map cell_ival cells))
                  continuations
              end)
            path);
      (* Leaf locals: intervals confined to the leaf's range, sorted by
         left endpoint so the candidates form a prefix. *)
      (match List.rev path with
      | leaf :: _ ->
          let cells, reads =
            scan t ~stats ~kind:`Data leaf.locals ~keep:(fun iv ->
                Ival.lo iv <= q)
          in
          let hits =
            List.map cell_ival cells |> List.filter (fun iv -> Ival.contains iv q)
          in
          note_waste reads (List.length hits);
          add hits
      | [] -> ());
      let raw = !out in
      stats.reported_raw <- List.length raw;
      (Ival.dedup_by_id raw, stats)

(* ------------------------------------------------------------------ *)
(* Introspection                                                      *)
(* ------------------------------------------------------------------ *)

let mode t = t.mode
let size t = t.size
let page_size t = Pager.page_capacity t.pager

(* Structural invariants, walked page-by-page off the live store. Costs
   I/O; run outside counted sections and with fault plans disarmed. *)
let check_invariants t =
  let fail fmt = Format.kasprintf failwith ("Ext_seg.check_invariants: " ^^ fmt) in
  match t.layout with
  | None -> if t.size <> 0 then fail "no layout but size=%d" t.size
  | Some layout ->
      let b = Pager.page_capacity t.pager in
      let descs = Hashtbl.create 64 in
      Array.iter
        (fun page ->
          Array.iter
            (function
              | Desc d ->
                  if Hashtbl.mem descs d.node then fail "duplicate node %d" d.node;
                  Hashtbl.replace descs d.node d
              | Iv _ | Tagged _ -> fail "interval cell in a skeletal block")
            (Pager.read t.pager page))
        t.block_pages;
      let get i =
        match Hashtbl.find_opt descs i with
        | Some d -> d
        | None -> fail "missing descriptor for node %d" i
      in
      let ivs_of list = List.map cell_ival (Blocked_list.read_all t.pager list) in
      let check_sorted what l =
        let rec go = function
          | a :: (c :: _ as rest) ->
              if Ival.compare_lo a c > 0 then fail "%s out of order" what;
              go rest
          | _ -> ()
        in
        go l
      in
      let allocations = ref 0 in
      let rec walk i ~depth ~parent =
        let d = get i in
        if d.node <> i then fail "node %d stored under id %d" d.node i;
        if d.depth <> depth then
          fail "node %d: depth %d, expected %d" i d.depth depth;
        if d.lo >= d.hi then fail "node %d: empty cover [%d,%d)" i d.lo d.hi;
        let is_leaf = d.left < 0 in
        if is_leaf <> (d.right < 0) then fail "node %d: half-leaf" i;
        let is_block_root =
          match parent with
          | None -> true
          | Some p -> not (Skeletal_layout.same_block layout i p)
        in
        if d.is_hop <> (is_leaf || is_block_root) then
          fail "node %d: is_hop mis-marked" i;
        let cl = ivs_of d.cl in
        if List.length cl <> d.cl_len then
          fail "node %d: cover-list length %d <> cl_len %d" i (List.length cl)
            d.cl_len;
        allocations := !allocations + d.cl_len;
        check_sorted "cover-list" cl;
        (* every stored interval covers this node's range entirely *)
        List.iter
          (fun iv ->
            if not (Ival.lo iv <= d.lo && d.hi <= Ival.hi iv + 1) then
              fail "node %d: cover-list interval does not cover [%d,%d)" i d.lo
                d.hi)
          cl;
        (* standard allocation: the parent is not covered too *)
        (match parent with
        | None -> ()
        | Some p ->
            let pd = get p in
            List.iter
              (fun iv ->
                if Ival.lo iv <= pd.lo && pd.hi <= Ival.hi iv + 1 then
                  fail "node %d: interval also covers parent %d (not maximal)" i
                    p)
              cl);
        let cache = Blocked_list.read_all t.pager d.cache in
        if t.mode = Naive && cache <> [] then
          fail "node %d: cache non-empty in naive mode" i;
        if (not d.is_hop) && cache <> [] then fail "node %d: cache on non-hop" i;
        let per_src = Hashtbl.create 4 in
        List.iter
          (function
            | Tagged { iv = _; src; src_total } ->
                let u = get src in
                if u.depth > depth then
                  fail "node %d: cache source %d below it" i src;
                if src_total <> min b u.cl_len then
                  fail "node %d: cache source %d total %d <> min(b,%d)" i src
                    src_total u.cl_len;
                Hashtbl.replace per_src src
                  (1 + Option.value ~default:0 (Hashtbl.find_opt per_src src))
            | Iv _ | Desc _ -> fail "node %d: untagged cache cell" i)
          cache;
        Hashtbl.iter
          (fun src n ->
            if n <> min b (get src).cl_len then
              fail "node %d: cache holds %d entries of source %d" i n src)
          per_src;
        let locals = ivs_of d.locals in
        if is_leaf then begin
          check_sorted "locals" locals;
          List.iter
            (fun iv ->
              (* locals overlap the leaf's range without covering it *)
              if not (Ival.lo iv < d.hi && d.lo <= Ival.hi iv) then
                fail "leaf %d: local interval outside its range" i;
              if Ival.lo iv <= d.lo && d.hi <= Ival.hi iv + 1 then
                fail "leaf %d: local interval covers the whole leaf" i)
            locals
        end
        else begin
          if locals <> [] then fail "internal node %d holds locals" i;
          let l = get d.left and r = get d.right in
          if l.lo <> d.lo || r.hi <> d.hi || l.hi <> r.lo || d.mid <> r.lo then
            fail "node %d: children do not tile its cover" i;
          walk d.left ~depth:(depth + 1) ~parent:(Some i);
          walk d.right ~depth:(depth + 1) ~parent:(Some i)
        end
      in
      walk 0 ~depth:0 ~parent:None;
      if !allocations <> t.total_allocations then
        fail "stored %d cover-list entries, total_allocations says %d"
          !allocations t.total_allocations

let cost_model t =
  Pc_obs.Cost_model.Segtree
    (match t.mode with
    | Naive -> Pc_obs.Cost_model.Naive
    | Cached -> Pc_obs.Cost_model.Cached)

let conformance t ~t_out ~measured =
  Pc_obs.Cost_model.Conformance.check (cost_model t) ~n:t.size
    ~b:(Pager.page_capacity t.pager) ~t:t_out ~measured
let height t = t.height
let stab_count t q = List.length (fst (stab t q))
let storage_pages t = Pager.pages_in_use t.pager
let io_stats t = Pager.stats t.pager
let reset_io_stats t = Pager.reset_stats t.pager
let total_allocations t = t.total_allocations

(* ------------------------------------------------------------------ *)
(* Durability                                                         *)
(* ------------------------------------------------------------------ *)

let snapshot t = Marshal.to_string (t.mode, Pager.page_capacity t.pager, t.layout, t.block_pages, t.size, t.height, t.total_allocations) []

(* The static build is one journal transaction — all-or-nothing under a
   crash. *)
let create ?cache_capacity ?pool ?obs ?durability ~mode ~b ivs =
  let result = ref None in
  Wal.with_txn durability
    ~meta:(fun () -> snapshot (Option.get !result))
    (fun () ->
      let t =
        create_unjournaled ?cache_capacity ?pool ?obs ?durability ~mode ~b
          ivs
      in
      result := Some t;
      t)

let wal t = Pager.wal t.pager

let of_snapshot r ~idx ~snapshot =
  let (mode, b, layout, block_pages, size, height, total_allocations) : mode * int * Skeletal_layout.t option * int array * int * int * int =
    Marshal.from_string snapshot 0
  in
  let pager = Pager.attach_recovered r ~idx ~page_capacity:b () in
  { mode; pager; layout; block_pages; size; height; total_allocations }

let recover ?(mode = Cached) ~b (r : Wal.recovered) =
  match r.Wal.r_meta with
  | Some snapshot -> of_snapshot r ~idx:0 ~snapshot
  | None -> create ~durability:(Wal.create ()) ~mode ~b []
