(** External segment tree with path caching (paper §2, Theorem 3.4).

    Answers stabbing queries — report all intervals containing a point —
    over a simulated disk of page size [B].

    Layout: the interval endpoints are grouped [B] per leaf, so the base
    tree has [O(n/B)] leaves; intervals falling inside a single leaf's
    range live in that leaf's local page, the rest are allocated to
    cover-lists exactly as in the in-core segment tree. The tree is packed
    into skeletal blocks of height [log2 B] (Figure 2), and each block
    root / leaf carries a path cache coalescing the first cover-list page
    of every node in the previous / its own block's path segment
    (Figure 3), tagged by source so a query can continue into long
    cover-lists it has fully consumed.

    - {!Cached} (Theorem 3.4): [O(log_B n + t/B)] query I/Os,
      [O((n/B) log2 n)] pages.
    - {!Naive}: same layout without caches — every path node's cover-list
      is read directly, [O(log2 n + t/B)] query I/Os, the baseline the
      theorem improves on ([BlGb]).

    The paper assumes intervals share no endpoints; shared endpoints are
    supported but may make leaf-local lists longer than one page, adding
    the corresponding scan I/Os. *)

open Pc_util

type mode = Naive | Cached

val pp_mode : Format.formatter -> mode -> unit

type t

(** [create ~mode ~b ivs] builds the structure on its own simulated disk
    with page capacity [b] (requires [b >= 2]). *)
val create :
  ?cache_capacity:int ->
  ?pool:Pc_bufferpool.Buffer_pool.t ->
  ?obs:Pc_obs.Obs.t ->
  ?durability:Pc_pagestore.Wal.t ->
  mode:mode ->
  b:int ->
  Ival.t list ->
  t

val mode : t -> mode
val size : t -> int
val page_size : t -> int

(** [cost_model t] identifies this instance's analytical bound (theorem
    + calibrated constants) in {!Pc_obs.Cost_model}. *)
val cost_model : t -> Pc_obs.Cost_model.structure

(** [conformance t ~t_out ~measured] checks one query's measured page
    I/Os against the instance's theorem bound ([t_out] is the query's
    output size). *)
val conformance :
  t -> t_out:int -> measured:int -> Pc_obs.Cost_model.Conformance.verdict
val height : t -> int

(** [stab t q] reports all intervals containing [q] (id-deduplicated),
    with the per-query I/O breakdown. *)
val stab : t -> int -> Ival.t list * Pc_pagestore.Query_stats.t

val stab_count : t -> int -> int

(** [check_invariants t] walks every page and validates the structure:
    cover nesting (children tile their parent's half-open range),
    segment-tree allocation (each cover-list interval covers its node but
    not the parent; leaf locals overlap without covering), sort orders,
    hop marking, cache contents (tagged, ancestor-sourced,
    first-page-sized) and the allocation total. Raises [Failure] on the
    first violation. Reads every page — run with fault plans disarmed. *)
val check_invariants : t -> unit

val storage_pages : t -> int
val io_stats : t -> Pc_pagestore.Io_stats.t
val reset_io_stats : t -> unit

(** [total_allocations t] is the summed cover-list length — the
    [O(n log n)] replication the theorem's space bound tracks. *)
val total_allocations : t -> int

(** {1 Durability}

    [durability] enrolls the pager in a write-ahead journal; the whole
    build then runs as one transaction (all-or-nothing under a crash)
    and {!recover} rebuilds the structure from a crash image alone —
    recovered pages plus the scalar state carried by the commit record.
    [snapshot] / [of_snapshot] split recovery for owners that embed this
    structure in a larger journaled unit. *)

val wal : t -> Pc_pagestore.Wal.t option
val recover : ?mode:mode -> b:int -> Pc_pagestore.Wal.recovered -> t
val snapshot : t -> string

val of_snapshot :
  Pc_pagestore.Wal.recovered -> idx:int -> snapshot:string -> t
