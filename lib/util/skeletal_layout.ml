type t = {
  block_height : int;
  block_of : int array; (* node id -> block id, -1 if unreachable *)
  members : int list array; (* block id -> node ids, preorder *)
}

let compute ~num_nodes ~root ~left ~right ~block_height =
  if block_height < 1 then
    invalid_arg "Skeletal_layout.compute: block_height < 1";
  if num_nodes < 1 then invalid_arg "Skeletal_layout.compute: no nodes";
  let block_of = Array.make num_nodes (-1) in
  let visit_order = ref [] in
  let num_blocks = ref 0 in
  (* DFS carrying (block id, depth within block). A child at in-block
     depth [block_height] starts a fresh block. *)
  let rec visit node block in_depth =
    block_of.(node) <- block;
    visit_order := node :: !visit_order;
    let descend child =
      match child with
      | None -> ()
      | Some c ->
          if in_depth + 1 >= block_height then begin
            let b = !num_blocks in
            incr num_blocks;
            visit c b 0
          end
          else visit c block (in_depth + 1)
    in
    descend (left node);
    descend (right node)
  in
  let root_block = !num_blocks in
  incr num_blocks;
  visit root root_block 0;
  let members = Array.make !num_blocks [] in
  (* [visit_order] is reverse preorder; prepending restores preorder. *)
  List.iter
    (fun node ->
      let b = block_of.(node) in
      members.(b) <- node :: members.(b))
    !visit_order;
  { block_height; block_of; members }

let block_height t = t.block_height
let num_blocks t = Array.length t.members

let block_of t node =
  let b = t.block_of.(node) in
  if b < 0 then invalid_arg "Skeletal_layout.block_of: unreachable node";
  b

let nodes_in t block = t.members.(block)
let same_block t a b = block_of t a = block_of t b

let max_block_size t =
  Array.fold_left (fun acc l -> max acc (List.length l)) 0 t.members
