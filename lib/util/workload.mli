(** Synthetic workload generators for points, intervals and queries.

    The paper's theorems are worst-case and distribution-free; these
    generators provide the distributions swept by the benchmark harness
    (uniform, clustered, diagonal, adversarial) plus query generators with
    controllable expected output size [t]. Every generator is deterministic
    given its {!Rng.t}. *)

(** Point distribution shapes. *)
type point_dist =
  | Uniform  (** i.i.d. uniform over the coordinate universe *)
  | Clustered of int
      (** [Clustered k]: points concentrated around [k] random centers;
          stresses skewed region occupancy *)
  | Diagonal
      (** points near the main diagonal with [x <= y]; the image of random
          intervals under the stabbing reduction *)
  | Skyline
      (** anti-correlated band ([x + y] roughly constant); many points are
          maximal, stressing sibling caches *)

val pp_point_dist : Format.formatter -> point_dist -> unit

(** [points rng dist ~n ~universe] generates [n] points with distinct ids
    [0..n-1] and coordinates in [0, universe). *)
val points : Rng.t -> point_dist -> n:int -> universe:int -> Point.t list

(** Interval length shapes. *)
type ival_dist =
  | Short_ivals  (** lengths ~ universe/n: few stabbing hits *)
  | Long_ivals  (** lengths ~ universe/4: heavy overlap *)
  | Mixed_ivals  (** log-uniform lengths *)
  | Nested_ivals  (** telescoping nests; adversarial for interval trees *)

val pp_ival_dist : Format.formatter -> ival_dist -> unit

(** [intervals rng dist ~n ~universe] generates [n] intervals with distinct
    ids and endpoints in [0, universe). *)
val intervals : Rng.t -> ival_dist -> n:int -> universe:int -> Ival.t list

(** [two_sided_corners rng ~k ~universe] generates [k] query corners
    [(xl, yb)] uniformly. *)
val two_sided_corners : Rng.t -> k:int -> universe:int -> (int * int) list

(** [three_sided rng ~k ~universe ~width] generates [k] triples
    [(xl, xr, yb)] with [xr - xl ~ width]. *)
val three_sided :
  Rng.t -> k:int -> universe:int -> width:int -> (int * int * int) list

(** [stab_queries rng ~k ~universe] generates [k] stabbing coordinates. *)
val stab_queries : Rng.t -> k:int -> universe:int -> int list

(** [corner_for_target_t pts ~frac] computes a 2-sided corner whose output
    over [pts] is approximately [frac] of the input (used by the
    output-sensitivity sweep E3). *)
val corner_for_target_t : Point.t list -> frac:float -> int * int
