(** Planar points with integer coordinates and a unique identifier.

    All external search structures in this repository index values of type
    {!t}. Coordinates are [int]s: the I/O-model results of the paper are
    comparison-based, so integer keys lose no generality, and exact
    arithmetic keeps tests deterministic. The [id] field distinguishes
    points that share coordinates and lets queries deduplicate the copies
    introduced by path caching. *)

type t = { x : int; y : int; id : int }

val make : x:int -> y:int -> id:int -> t

val x : t -> int
val y : t -> int
val id : t -> int

(** [compare_xy] orders by [x], breaking ties by [y] then [id]. This is the
    total order used by skeletal B-trees over x-coordinates. *)
val compare_xy : t -> t -> int

(** [compare_yx] orders by [y], breaking ties by [x] then [id]. *)
val compare_yx : t -> t -> int

(** [compare_x_desc] orders by decreasing [x] (ties by [id]); the order of
    ancestor caches ("A-lists", largest x first). *)
val compare_x_desc : t -> t -> int

(** [compare_y_desc] orders by decreasing [y] (ties by [id]); the order of
    sibling caches ("S-lists", largest y first). *)
val compare_y_desc : t -> t -> int

val compare_id : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string

(** Sets of points keyed by [id]; used to deduplicate query output. *)
module Id_set : Set.S with type elt = int

(** [dedup_by_id pts] keeps the first occurrence of each id, preserving
    order of first appearance. *)
val dedup_by_id : t list -> t list

(** [sort_unique cmp pts] sorts and removes duplicate ids (keeping the
    copy that sorts first). *)
val sort_unique : (t -> t -> int) -> t list -> t list
