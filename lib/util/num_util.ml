let ceil_div a b =
  if b <= 0 then invalid_arg "Num_util.ceil_div: non-positive divisor";
  if a <= 0 then 0 else (a + b - 1) / b

let ilog2 n =
  if n < 1 then invalid_arg "Num_util.ilog2: n < 1";
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (n lsr 1) in
  loop 0 n

let ceil_log2 n =
  if n < 1 then invalid_arg "Num_util.ceil_log2: n < 1";
  let l = ilog2 n in
  if 1 lsl l = n then l else l + 1

let ceil_log ~base n =
  if base < 2 then invalid_arg "Num_util.ceil_log: base < 2";
  if n < 1 then invalid_arg "Num_util.ceil_log: n < 1";
  let rec loop acc pow =
    if pow >= n then acc
    else if pow > max_int / base then acc + 1
    else loop (acc + 1) (pow * base)
  in
  loop 0 1

let ilog_log2 n = max 1 (ilog2 (max 2 (ilog2 (max 2 n))))

let log_star n =
  let rec loop acc n = if n <= 1 then acc else loop (acc + 1) (ilog2 n) in
  loop 0 n

let is_pow2 n = n > 0 && n land (n - 1) = 0

let next_pow2 n =
  let n = max 1 n in
  let rec loop p = if p >= n then p else loop (p * 2) in
  loop 1

let clamp ~lo ~hi v = if v < lo then lo else if v > hi then hi else v
