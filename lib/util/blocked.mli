(** Helpers for splitting ordered lists into disk blocks of capacity [b].

    Path caching stores every list (cover-lists, A-lists, S-lists, X/Y
    lists) "in a blocked fashion" — consecutive runs of at most [B]
    elements per page. These helpers centralise the chunking arithmetic so
    all structures block lists identically. *)

(** [chunk ~b xs] splits [xs] into consecutive arrays of length [b]
    (the last one possibly shorter). [chunk ~b []] is [[]]. Requires
    [b > 0]. *)
val chunk : b:int -> 'a list -> 'a array list

(** [chunk_array ~b arr] is {!chunk} on an array input. *)
val chunk_array : b:int -> 'a array -> 'a array list

(** [blocks_needed ~b len] is the number of pages a [len]-element list
    occupies: [ceil (len / b)]. *)
val blocks_needed : b:int -> int -> int

(** [take n xs] is the first [min n (length xs)] elements of [xs]. *)
val take : int -> 'a list -> 'a list

(** [drop n xs] is [xs] without its first [n] elements. *)
val drop : int -> 'a list -> 'a list

(** [prefix_while p xs] is the longest prefix of [xs] whose elements all
    satisfy [p], paired with a flag telling whether the scan stopped
    before the end of the list. *)
val prefix_while : ('a -> bool) -> 'a list -> 'a list * bool
