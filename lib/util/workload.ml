type point_dist = Uniform | Clustered of int | Diagonal | Skyline

let pp_point_dist ppf = function
  | Uniform -> Format.fprintf ppf "uniform"
  | Clustered k -> Format.fprintf ppf "clustered(%d)" k
  | Diagonal -> Format.fprintf ppf "diagonal"
  | Skyline -> Format.fprintf ppf "skyline"

let points rng dist ~n ~universe =
  if n < 0 then invalid_arg "Workload.points: n < 0";
  if universe <= 0 then invalid_arg "Workload.points: universe <= 0";
  let u = universe in
  let gen_one i =
    match dist with
    | Uniform -> Point.make ~x:(Rng.int rng u) ~y:(Rng.int rng u) ~id:i
    | Clustered k ->
        (* Pick a deterministic center from a small palette, then jitter. *)
        let k = max 1 k in
        let c = Rng.int rng k in
        let cx = (c * 2 + 1) * u / (2 * k) in
        let cy = ((c * 7919) mod k * 2 + 1) * u / (2 * k) in
        let spread = max 1 (u / (4 * k)) in
        let jitter () = Rng.int rng (2 * spread) - spread in
        let x = Num_util.clamp ~lo:0 ~hi:(u - 1) (cx + jitter ()) in
        let y = Num_util.clamp ~lo:0 ~hi:(u - 1) (cy + jitter ()) in
        Point.make ~x ~y ~id:i
    | Diagonal ->
        let x = Rng.int rng u in
        let y = Num_util.clamp ~lo:0 ~hi:(u - 1) (x + Rng.int rng (max 1 (u / 8))) in
        Point.make ~x ~y ~id:i
    | Skyline ->
        let x = Rng.int rng u in
        let band = max 1 (u / 16) in
        let y =
          Num_util.clamp ~lo:0 ~hi:(u - 1) (u - 1 - x + Rng.int rng (2 * band) - band)
        in
        Point.make ~x ~y ~id:i
  in
  List.init n gen_one

type ival_dist = Short_ivals | Long_ivals | Mixed_ivals | Nested_ivals

let pp_ival_dist ppf = function
  | Short_ivals -> Format.fprintf ppf "short"
  | Long_ivals -> Format.fprintf ppf "long"
  | Mixed_ivals -> Format.fprintf ppf "mixed"
  | Nested_ivals -> Format.fprintf ppf "nested"

let intervals rng dist ~n ~universe =
  if n < 0 then invalid_arg "Workload.intervals: n < 0";
  if universe <= 1 then invalid_arg "Workload.intervals: universe <= 1";
  let u = universe in
  let gen_one i =
    match dist with
    | Short_ivals ->
        let len = 1 + Rng.int rng (max 1 (u / max 1 n)) in
        let lo = Rng.int rng (max 1 (u - len)) in
        Ival.make ~lo ~hi:(min (u - 1) (lo + len)) ~id:i
    | Long_ivals ->
        let len = u / 8 + Rng.int rng (max 1 (u / 8)) in
        let lo = Rng.int rng (max 1 (u - len)) in
        Ival.make ~lo ~hi:(min (u - 1) (lo + len)) ~id:i
    | Mixed_ivals ->
        (* Log-uniform lengths: pick a scale 2^k first. *)
        let kmax = max 1 (Num_util.ilog2 u) in
        let k = Rng.int rng kmax in
        let len = 1 + Rng.int rng (max 1 (1 lsl k)) in
        let len = min len (u - 1) in
        let lo = Rng.int rng (max 1 (u - len)) in
        Ival.make ~lo ~hi:(min (u - 1) (lo + len)) ~id:i
    | Nested_ivals ->
        (* Telescoping family around the universe midpoint. *)
        let step = max 1 (u / (2 * max 1 n)) in
        let off = (i * step) mod (u / 2) in
        Ival.make ~lo:off ~hi:(u - 1 - off) ~id:i
  in
  List.init n gen_one

let two_sided_corners rng ~k ~universe =
  List.init k (fun _ -> (Rng.int rng universe, Rng.int rng universe))

let three_sided rng ~k ~universe ~width =
  List.init k (fun _ ->
      let xl = Rng.int rng universe in
      let w = max 0 (width + Rng.int rng (max 1 (width / 2 + 1)) - width / 4) in
      let xr = min (universe - 1) (xl + w) in
      let yb = Rng.int rng universe in
      (xl, xr, yb))

let stab_queries rng ~k ~universe = List.init k (fun _ -> Rng.int rng universe)

let corner_for_target_t pts ~frac =
  (* Choose the corner on the anti-diagonal sweep whose dominating set has
     the closest size to [frac * n]. A coarse scan over quantiles is
     enough: benchmarks only need approximate output sizes. *)
  let n = List.length pts in
  if n = 0 then (0, 0)
  else begin
    let xs = List.map Point.x pts |> List.sort compare |> Array.of_list in
    let ys = List.map Point.y pts |> List.sort compare |> Array.of_list in
    let target = int_of_float (frac *. float_of_int n) in
    let count_at xl yb =
      List.fold_left
        (fun acc (p : Point.t) -> if p.x >= xl && p.y >= yb then acc + 1 else acc)
        0 pts
    in
    let best = ref (xs.(0), ys.(0)) in
    let best_err = ref max_int in
    let steps = 24 in
    for i = 0 to steps do
      let idx = Num_util.clamp ~lo:0 ~hi:(n - 1) (i * (n - 1) / steps) in
      (* Symmetric quantile cut: take x-quantile idx and y-quantile idx. *)
      let xl = xs.(idx) and yb = ys.(idx) in
      let err = abs (count_at xl yb - target) in
      if err < !best_err then begin
        best_err := err;
        best := (xl, yb)
      end
    done;
    !best
  end
