(* Splitmix64, truncated to OCaml's 63-bit native ints. The generator is a
   single mutable counter, so [copy] is a cheap snapshot. *)

type t = { mutable state : int64 }

let create seed = { state = Int64.of_int seed }
let copy t = { state = t.state }

let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let next t = Int64.to_int (Int64.shift_right_logical (next64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  (* Rejection sampling to avoid modulo bias. *)
  let limit = max_int / 2 / bound * bound in
  let rec loop () =
    let v = next t in
    if v < limit || limit = 0 then v mod bound else loop ()
  in
  loop ()

let int_in t ~lo ~hi =
  if lo > hi then invalid_arg "Rng.int_in: lo > hi";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next64 t) 1L = 1L
let float t = Int64.to_float (Int64.shift_right_logical (next64 t) 11) /. 9007199254740992.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let split t = { state = mix (next64 t) }
