(** Assignment of binary-tree nodes to skeletal blocks (paper §2, Fig. 2).

    To search a height-[H] binary tree with [O(H / log B)] I/Os, the paper
    maps subtrees of height [log B] into disk blocks: the resulting
    "skeletal B-tree" crosses one block per [log B] levels. This module
    computes that assignment purely (no I/O): nodes are identified by
    dense int ids; the caller persists each block's node descriptors into
    one page and charges reads when a traversal crosses block boundaries.

    A node at depth [d] belongs to the block rooted at its ancestor whose
    depth is the largest multiple of [block_height] that is [<= d]; a
    block therefore holds at most [2^block_height - 1] nodes. Choosing
    [block_height = floor(log2 (B + 1))] keeps every block within a page
    of capacity [B]. *)

type t

(** [compute ~num_nodes ~root ~left ~right ~block_height] assigns every
    node reachable from [root] to a block. [left]/[right] give children by
    id ([None] for absent). Block ids are dense, [0 .. num_blocks - 1];
    block [0] contains [root]. *)
val compute :
  num_nodes:int ->
  root:int ->
  left:(int -> int option) ->
  right:(int -> int option) ->
  block_height:int ->
  t

val block_height : t -> int
val num_blocks : t -> int

(** [block_of t node] is the block id holding [node]. *)
val block_of : t -> int -> int

(** [nodes_in t block] lists the node ids of a block (root-first,
    preorder). *)
val nodes_in : t -> int -> int list

(** [same_block t a b] tests whether two nodes share a block — a traversal
    stepping between them needs no new page read. *)
val same_block : t -> int -> int -> bool

(** [max_block_size t] is the largest node count of any block; always
    [<= 2^block_height - 1]. *)
val max_block_size : t -> int
