type t = { lo : int; hi : int; id : int }

let make ~lo ~hi ~id =
  if lo > hi then invalid_arg "Ival.make: lo > hi";
  { lo; hi; id }

let lo iv = iv.lo
let hi iv = iv.hi
let id iv = iv.id
let contains iv q = iv.lo <= q && q <= iv.hi
let covers outer inner = outer.lo <= inner.lo && inner.hi <= outer.hi
let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let compare_lo a b =
  let c = compare a.lo b.lo in
  if c <> 0 then c else compare a.id b.id

let compare_hi_desc a b =
  let c = compare b.hi a.hi in
  if c <> 0 then c else compare a.id b.id

let compare_id a b = compare a.id b.id
let equal a b = a.id = b.id && a.lo = b.lo && a.hi = b.hi
let pp ppf iv = Format.fprintf ppf "#%d[%d,%d]" iv.id iv.lo iv.hi
let to_point iv = Point.make ~x:iv.lo ~y:iv.hi ~id:iv.id

let of_point (p : Point.t) =
  if p.x > p.y then invalid_arg "Ival.of_point: x > y";
  { lo = p.x; hi = p.y; id = p.id }

let dedup_by_id ivs =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun iv ->
      if Hashtbl.mem seen iv.id then false
      else begin
        Hashtbl.add seen iv.id ();
        true
      end)
    ivs

let endpoints ivs =
  List.concat_map (fun iv -> [ iv.lo; iv.hi ]) ivs
  |> List.sort_uniq compare
