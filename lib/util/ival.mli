(** Closed integer intervals [lo, hi] with a unique identifier.

    Used by the segment-tree and interval-tree structures and by the
    interval-management reduction of Section 1 of the paper (stabbing
    queries reduce to diagonal-corner queries on points [(lo, hi)]). *)

type t = { lo : int; hi : int; id : int }

(** [make ~lo ~hi ~id] builds the interval. Raises [Invalid_argument] if
    [lo > hi]. *)
val make : lo:int -> hi:int -> id:int -> t

val lo : t -> int
val hi : t -> int
val id : t -> int

(** [contains iv q] is true iff [lo <= q <= hi]. *)
val contains : t -> int -> bool

(** [covers outer inner] is true iff [inner] lies entirely within
    [outer]. *)
val covers : t -> t -> bool

(** [overlaps a b] is true iff the two intervals share at least one
    point. *)
val overlaps : t -> t -> bool

(** [compare_lo] orders by increasing left endpoint (ties by id); the
    order of left-direction interval-tree lists. *)
val compare_lo : t -> t -> int

(** [compare_hi_desc] orders by decreasing right endpoint (ties by id);
    the order of right-direction interval-tree lists. *)
val compare_hi_desc : t -> t -> int

val compare_id : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

(** [to_point iv] maps the interval to the plane point [(lo, hi)] with the
    same id: the [KRV] reduction. A point [q] stabs [iv] iff the point lies
    in the 2-sided-style query [x <= q && y >= q]. *)
val to_point : t -> Point.t

(** [of_point p] reverses {!to_point}. Raises [Invalid_argument] if
    [p.x > p.y]. *)
val of_point : Point.t -> t

(** [dedup_by_id ivs] keeps the first occurrence of each id. *)
val dedup_by_id : t list -> t list

(** [endpoints ivs] returns the sorted deduplicated list of all interval
    endpoints. *)
val endpoints : t list -> int list
