(** Small integer/asymptotics helpers shared across the repository.

    The paper's bounds are phrased in terms of [log2 n], [log_B n],
    [log log B] and [log* B]; these helpers compute the integer versions
    used to size caches and to predict I/O curves in the benchmarks. *)

(** [ceil_div a b] is [a / b] rounded up. Requires [b > 0]. *)
val ceil_div : int -> int -> int

(** [ilog2 n] is [floor (log2 n)] for [n >= 1]. Raises [Invalid_argument]
    otherwise. *)
val ilog2 : int -> int

(** [ceil_log2 n] is [ceil (log2 n)] for [n >= 1] ([0] when [n = 1]). *)
val ceil_log2 : int -> int

(** [ceil_log ~base n] is [ceil (log_base n)] for [n >= 1], [base >= 2].
    This is the paper's [log_B n] search-path bound. *)
val ceil_log : base:int -> int -> int

(** [ilog_log2 n] is [max 1 (ilog2 (max 2 (ilog2 n)))]: the [log log B]
    factor, clamped so it is always at least 1. *)
val ilog_log2 : int -> int

(** [log_star n] is the iterated logarithm: the number of times [ilog2]
    must be applied to [n] before the value drops to [<= 1]. *)
val log_star : int -> int

(** [is_pow2 n] is true iff [n] is a positive power of two. *)
val is_pow2 : int -> bool

(** [next_pow2 n] is the least power of two [>= max 1 n]. *)
val next_pow2 : int -> int

(** [clamp ~lo ~hi v] bounds [v] into [lo, hi]. *)
val clamp : lo:int -> hi:int -> int -> int
