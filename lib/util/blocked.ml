let chunk ~b xs =
  if b <= 0 then invalid_arg "Blocked.chunk: b <= 0";
  let rec loop acc current count = function
    | [] ->
        let acc =
          if current = [] then acc
          else Array.of_list (List.rev current) :: acc
        in
        List.rev acc
    | x :: rest ->
        if count = b then
          loop (Array.of_list (List.rev current) :: acc) [ x ] 1 rest
        else loop acc (x :: current) (count + 1) rest
  in
  loop [] [] 0 xs

let chunk_array ~b arr =
  if b <= 0 then invalid_arg "Blocked.chunk_array: b <= 0";
  let n = Array.length arr in
  let rec loop acc i =
    if i >= n then List.rev acc
    else
      let len = min b (n - i) in
      loop (Array.sub arr i len :: acc) (i + len)
  in
  loop [] 0

let blocks_needed ~b len = Num_util.ceil_div len b

let take n xs =
  let rec loop acc n = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: rest -> loop (x :: acc) (n - 1) rest
  in
  loop [] n xs

let rec drop n xs =
  if n <= 0 then xs else match xs with [] -> [] | _ :: rest -> drop (n - 1) rest

let prefix_while p xs =
  let rec loop acc = function
    | [] -> (List.rev acc, false)
    | x :: rest -> if p x then loop (x :: acc) rest else (List.rev acc, true)
  in
  loop [] xs
