type t = { x : int; y : int; id : int }

let make ~x ~y ~id = { x; y; id }
let x p = p.x
let y p = p.y
let id p = p.id

let compare_xy a b =
  let c = compare a.x b.x in
  if c <> 0 then c
  else
    let c = compare a.y b.y in
    if c <> 0 then c else compare a.id b.id

let compare_yx a b =
  let c = compare a.y b.y in
  if c <> 0 then c
  else
    let c = compare a.x b.x in
    if c <> 0 then c else compare a.id b.id

let compare_x_desc a b =
  let c = compare b.x a.x in
  if c <> 0 then c else compare a.id b.id

let compare_y_desc a b =
  let c = compare b.y a.y in
  if c <> 0 then c else compare a.id b.id

let compare_id a b = compare a.id b.id
let equal a b = a.id = b.id && a.x = b.x && a.y = b.y
let pp ppf p = Format.fprintf ppf "#%d(%d,%d)" p.id p.x p.y
let to_string p = Format.asprintf "%a" pp p

module Id_set = Set.Make (Int)

let dedup_by_id pts =
  let seen = Hashtbl.create 64 in
  List.filter
    (fun p ->
      if Hashtbl.mem seen p.id then false
      else begin
        Hashtbl.add seen p.id ();
        true
      end)
    pts

let sort_unique cmp pts = dedup_by_id (List.sort cmp pts)
