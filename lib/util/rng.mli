(** Deterministic pseudo-random number generator (splitmix64).

    All workload generators and property tests derive their randomness from
    this module so that every experiment in EXPERIMENTS.md is exactly
    reproducible from a seed printed alongside its results. *)

type t

(** [create seed] makes an independent generator. Equal seeds give equal
    streams. *)
val create : int -> t

(** [copy t] snapshots the generator state. *)
val copy : t -> t

(** [next t] returns the next raw 62-bit non-negative integer. *)
val next : t -> int

(** [int t bound] is uniform in [0, bound). Requires [bound > 0]. *)
val int : t -> int -> int

(** [int_in t ~lo ~hi] is uniform in the inclusive range [lo, hi]. *)
val int_in : t -> lo:int -> hi:int -> int

(** [bool t] is a fair coin. *)
val bool : t -> bool

(** [float t] is uniform in [0, 1). *)
val float : t -> float

(** [shuffle t arr] permutes [arr] in place (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [split t] derives a new independent generator from [t], advancing
    [t]. *)
val split : t -> t
