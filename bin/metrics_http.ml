(* Live Prometheus endpoint: a minimal HTTP/1.1 server over plain Unix
   sockets serving the metrics registry of a file-backed B+-tree. The
   tree is built (journaled, with a real clock on the trace handle) at
   startup, so the registry already holds device, codec, wal and fsync
   latency histograms; each scrape runs a batch of range queries first,
   so the read-side histograms keep filling between polls.

   One request per connection (Connection: close), no keep-alive, no
   threads: a scrape is cheap and Prometheus polls serially. A receive
   timeout on every accepted socket keeps a second in-flight connection
   that never completes its request from wedging the accept loop — the
   read times out, the connection is closed, and serving continues.
   Routes: GET /metrics (text exposition format), GET /healthz, GET
   /quit (responds, then shuts down cleanly). *)

open Pathcaching

let now_ns () = int_of_float (Unix.gettimeofday () *. 1e9)

let prom_content_type = "text/plain; version=0.0.4; charset=utf-8"

let response ?(status = "200 OK")
    ?(content_type = "text/plain; charset=utf-8") body =
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

(* A private directory under the system temp dir when the caller did not
   pin one; removed again on clean shutdown. *)
let fresh_dir () =
  let base = Filename.temp_file "pathcache-metrics" "" in
  Sys.remove base;
  Unix.mkdir base 0o700;
  base

let remove_dir dir =
  Array.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (try Sys.readdir dir with Sys_error _ -> [||]);
  try Unix.rmdir dir with Unix.Unix_error _ -> ()

let run ~port ~n ~b ~queries ~data_dir () =
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let dir, ephemeral =
    match data_dir with Some d -> (d, false) | None -> (fresh_dir (), true)
  in
  let obs = Obs.create ~clock:(Obs.Clock.of_fn now_ns) () in
  let m = Metrics.create () in
  Metrics.attach m obs;
  (* A modest private page cache so scrapes exercise hits as well as
     misses; the access profiler tees in beside the metrics registry and
     feeds the hit-ratio and working-set gauges below. *)
  let t =
    Btree.bulk_load_file ~cache_capacity:64 ~obs ~dir ~b
      (List.init n (fun i -> (i, i)))
  in
  let ap = Access_profile.create () in
  Access_profile.attach ap obs;
  let rng = Rng.create 42 in
  let span = max 1 (n / 100) in
  let scrape () =
    for _ = 1 to queries do
      let lo = Rng.int rng (max 1 (n - span)) in
      ignore (Btree.range t ~lo ~hi:(lo + span - 1))
    done;
    Pager.export_metrics (Btree.pager t) m;
    (* per-client cache health incl. pathcache_cache_hit_ratio{client} *)
    Buffer_pool.export_metrics (Pager.pool (Btree.pager t)) m;
    List.iter
      (fun (p : Access_profile.profile) ->
        Metrics.set
          (Metrics.gauge m
             ~help:"Distinct pages in the last 256 references, by client."
             ~labels:[ ("client", p.Access_profile.p_source) ]
             "pathcache_working_set_pages")
          p.Access_profile.p_ws_current;
        Metrics.set
          (Metrics.gauge m
             ~help:"Peak sliding-window working set, by client."
             ~labels:[ ("client", p.Access_profile.p_source) ]
             "pathcache_working_set_peak_pages")
          p.Access_profile.p_ws_peak)
      (Access_profile.profiles ap);
    Metrics.to_prometheus m
  in
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt sock Unix.SO_REUSEADDR true;
  Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen sock 16;
  Printf.printf
    "serving %d-key B+-tree metrics on http://127.0.0.1:%d/metrics (GET \
     /quit stops)\n%!"
    n port;
  let stop = ref false in
  while not !stop do
    let fd, _ = Unix.accept sock in
    (* An idle or half-open client times out instead of blocking the
       server forever; the failed read lands in the handler below. *)
    (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
     with Unix.Unix_error _ -> ());
    (try
       let ic = Unix.in_channel_of_descr fd in
       let oc = Unix.out_channel_of_descr fd in
       let request_line = try input_line ic with End_of_file -> "" in
       (* Drain the header block; every route is a bodyless GET. *)
       (try
          while String.trim (input_line ic) <> "" do
            ()
          done
        with End_of_file -> ());
       let path =
         match String.split_on_char ' ' request_line with
         | _meth :: p :: _ -> p
         | _ -> "/"
       in
       let reply =
         match path with
         | "/metrics" -> response ~content_type:prom_content_type (scrape ())
         | "/healthz" -> response "ok\n"
         | "/quit" ->
             stop := true;
             response "shutting down\n"
         | _ -> response ~status:"404 Not Found" "not found\n"
       in
       output_string oc reply;
       flush oc
     with
    | Sys_error _ | Sys_blocked_io | End_of_file | Unix.Unix_error _ -> ());
    (try Unix.close fd with Unix.Unix_error _ -> ())
  done;
  Unix.close sock;
  Btree.close t;
  Obs.close obs;
  if ephemeral then remove_dir dir
