(* Standalone session server: N worker domains serving shared stores
   over the length-prefixed wire protocol (see Pc_server.Server for the
   request grammar). The CLI subcommand `pathcache_cli serve` wraps the
   same engine; this binary exists for deployments that want the server
   without the workbench.

   Runs until SIGINT/SIGTERM or a client's `shutdown` verb. *)

let () =
  let port = ref 9470 in
  let workers = ref 4 in
  let idle = ref 5.0 in
  let b = ref 8 in
  let checkpoint_every = ref 512 in
  let max_inflight = ref 0 in
  let request_deadline = ref 0.0 in
  let spec =
    [
      ("--port", Arg.Set_int port, "P  TCP port on loopback (default 9470; 0 = ephemeral)");
      ("--workers", Arg.Set_int workers, "N  worker domains (default 4)");
      ( "--idle-timeout",
        Arg.Set_float idle,
        "SEC  drop connections silent this long (default 5.0)" );
      ("--b", Arg.Set_int b, "B  page size of created stores (default 8)");
      ( "--checkpoint-every",
        Arg.Set_int checkpoint_every,
        "K  overlay size that triggers a store rebuild (default 512)" );
      ( "--max-inflight",
        Arg.Set_int max_inflight,
        "N  shed requests past N in flight with `err busy' (default 0 = \
         unbounded)" );
      ( "--request-deadline",
        Arg.Set_float request_deadline,
        "SEC  soft per-request deadline; overruns reply `err deadline' \
         (default 0 = none)" );
    ]
  in
  Arg.parse spec
    (fun a -> raise (Arg.Bad ("unexpected argument " ^ a)))
    "pathcache_server [--port 9470] [--workers 4] [--idle-timeout 5.0]";
  let t =
    Pc_server.Server.start ~port:!port ~workers:!workers ~idle_timeout:!idle
      ~b:!b ~checkpoint_every:!checkpoint_every
      ?max_inflight:(if !max_inflight > 0 then Some !max_inflight else None)
      ?request_deadline:
        (if !request_deadline > 0.0 then Some !request_deadline else None)
      ()
  in
  Printf.printf
    "pathcache_server: %d worker domain(s) on 127.0.0.1:%d (wire protocol; \
     send `shutdown` or SIGTERM to stop)\n%!"
    !workers (Pc_server.Server.port t);
  let on_signal _ = Pc_server.Server.request_stop t in
  (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
   with Invalid_argument _ -> ());
  (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
   with Invalid_argument _ -> ());
  Pc_server.Server.wait t;
  Printf.printf "pathcache_server: stopped after %d session(s)\n%!"
    (Pc_server.Server.sessions_served t)
