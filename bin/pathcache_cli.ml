(* Command-line front end: build path-cached structures over synthetic
   workloads and inspect query I/O interactively.

     pathcache_cli pst   -n 100000 -b 64 --variant two-level --queries 20
     pathcache_cli pst3  -n 100000 -b 64 --width 50000
     pathcache_cli stab  -n 50000 -b 64 --cached true --structure segtree
     pathcache_cli btree -n 100000 -b 64 --span 500 *)

open Pathcaching
open Cmdliner

(* ----- shared args ----- *)

let n_arg =
  Arg.(value & opt int 50_000 & info [ "n" ] ~docv:"N" ~doc:"Number of items.")

let b_arg =
  Arg.(value & opt int 64 & info [ "b" ] ~docv:"B" ~doc:"Page size (records per page).")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let queries_arg =
  Arg.(value & opt int 10 & info [ "queries" ] ~docv:"K" ~doc:"Number of queries to run.")

let universe = 1_000_000

let cache_arg =
  Arg.(value & opt int 0 & info [ "cache" ] ~docv:"FRAMES"
         ~doc:"Buffer-pool capacity in page frames (0 = uncached, exact \
               I/O counts).")

let policy_conv =
  Arg.enum (List.map (fun p -> (Replacement.name p, p)) Replacement.all)

let policy_arg =
  Arg.(value & opt policy_conv Replacement.Lru & info [ "policy" ] ~docv:"POLICY"
         ~doc:"Buffer-pool replacement policy: lru, fifo, clock, 2q.")

(* A shared pool when caching is requested, [None] for exact counting. *)
let make_pool cache policy =
  if cache > 0 then Some (Buffer_pool.create ~policy ~capacity:cache ())
  else None

(* ----- storage backend ----- *)

let backend_arg =
  Arg.(value & opt (enum [ ("sim", `Sim); ("file", `File) ]) `Sim
       & info [ "backend" ] ~docv:"BACKEND"
           ~doc:"Storage backend: $(b,sim) keeps pages in the in-memory \
                 simulator (exact I/O counts, the default); $(b,file) \
                 stores binary pages and a durable journal on disk under \
                 $(b,--data-dir) (same I/O counts, real wall-clock). \
                 Supported by $(b,btree) and $(b,pst3).")

let data_dir_arg =
  Arg.(value & opt (some string) None & info [ "data-dir" ] ~docv:"PATH"
         ~doc:"Directory for the file backend's pages and journal \
               (created if missing). Requires $(b,--backend file).")

(* Validate the backend/data-dir combo up front so unsupported requests
   fail with one clear message instead of a deep exception. *)
let resolve_backend ~cmd ~file_supported backend data_dir =
  match (backend, data_dir) with
  | `Sim, None -> Ok None
  | `Sim, Some _ -> Error "--data-dir is only meaningful with --backend file"
  | `File, None -> Error "--backend file requires --data-dir PATH"
  | `File, Some dir ->
      if file_supported then Ok (Some dir)
      else
        Error
          (Printf.sprintf
             "%s does not support --backend file (only btree and pst3 \
              store pages on disk; rerun with --backend sim)"
             cmd)

let trace_arg =
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
         ~doc:"Write an event trace: $(i,FILE).json gets the Chrome \
               trace_event format (chrome://tracing, Perfetto), any other \
               extension JSONL (one event per line; replay with the \
               $(b,replay) subcommand).")

let metrics_arg =
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE"
         ~doc:"Export a metrics snapshot after the run: $(i,FILE).json gets \
               JSON, any other extension the Prometheus text format. The \
               registry listens on the event stream, so I/O counts stay \
               byte-identical with or without it.")

(* ----- wall clock and slow-op log ----- *)

let clock_arg =
  Arg.(value
       & opt (enum [ ("off", `Off); ("real", `Real); ("mock", `Mock) ]) `Off
       & info [ "clock" ] ~docv:"CLOCK"
           ~doc:"Wall-clock stamping of the trace (DESIGN.md \xc2\xa79): \
                 $(b,off) (the default; traces stay byte-identical to \
                 untimed runs), $(b,real) (nanoseconds from the system \
                 clock; also turns on device/codec/wal/checksum phase \
                 timing), $(b,mock) (a deterministic counter advancing \
                 1000ns per reading, for reproducible timed traces). \
                 Timing never affects control flow or I/O counts.")

let real_clock () =
  Obs.Clock.of_fn (fun () -> int_of_float (Unix.gettimeofday () *. 1e9))

let clock_of_choice = function
  | `Off -> None
  | `Real -> Some (real_clock ())
  | `Mock -> Some (Obs.Clock.mock ())

let slow_log_arg =
  Arg.(value & opt (some string) None & info [ "slow-log" ] ~docv:"FILE"
         ~doc:"Write a JSONL record for every span slower than \
               $(b,--slow-ms), and for every cost-model violation, to \
               $(i,FILE): label, wall time, I/Os and per-phase \
               breakdown. Implies $(b,--clock real) unless a clock was \
               given.")

let slow_ms_arg =
  Arg.(value & opt float 10. & info [ "slow-ms" ] ~docv:"MS"
         ~doc:"Slow-span threshold for $(b,--slow-log), in milliseconds.")

(* The handle is [None] unless [--trace], [--metrics], [--clock] or
   [--slow-log] was given, so the default run keeps the zero-overhead
   null path and byte-identical I/O counts. A metrics registry taps the
   same handle via a teed sink, and the slow log tees on the same way. A
   clock with no sink still matters: pagers fill their phase histograms
   whenever the handle carries one. *)
let make_obs ?(clock = `Off) ?slow_log ?(slow_ms = 10.) trace metrics_file =
  let clock =
    match (clock_of_choice clock, slow_log) with
    | None, Some _ -> Some (real_clock ()) (* slow spans need wall time *)
    | c, _ -> c
  in
  let slow =
    Option.map
      (fun path ->
        let oc = open_out path in
        ( path,
          oc,
          Obs.Slow_log.create oc
            ~threshold_ns:(int_of_float (slow_ms *. 1e6)) ))
      slow_log
  in
  match (trace, metrics_file, slow, clock) with
  | None, None, None, None -> (None, None, None)
  | _ ->
      let obs =
        match trace with Some f -> Obs.to_file f | None -> Obs.create ()
      in
      Option.iter (Obs.set_clock obs) clock;
      Option.iter
        (fun (_, _, sl) ->
          Obs.set_sink obs
            (Obs.tee (Obs.current_sink obs) (Obs.Slow_log.sink sl)))
        slow;
      let m =
        Option.map
          (fun _ ->
            let m = Metrics.create () in
            Metrics.attach m obs;
            m)
          metrics_file
      in
      (Some obs, m, slow)

(* Conformance violations always reach the slow log, whatever their wall
   time: a query that beat the threshold but broke its theorem bound is
   exactly what the log is for. *)
let note_violation slow ~label ~measured (v : Cost_model.Conformance.verdict) =
  match slow with
  | Some (_, _, sl) when not v.within ->
      Obs.Slow_log.note_violation sl ~label ~measured ~predicted:v.predicted
  | _ -> ()

let finish_obs trace obs =
  Option.iter Obs.close obs;
  Option.iter (Printf.printf "trace written to %s\n") trace

let finish_slow slow =
  Option.iter
    (fun (path, oc, sl) ->
      Obs.Slow_log.close sl;
      close_out oc;
      Printf.printf "slow log written to %s (%d entries)\n" path
        (Obs.Slow_log.logged sl))
    slow

let finish_metrics metrics_file m pool =
  match (metrics_file, m) with
  | Some path, Some m ->
      Option.iter (fun p -> Buffer_pool.export_metrics p m) pool;
      let body =
        if Filename.check_suffix path ".json" then Metrics.to_json m
        else Metrics.to_prometheus m
      in
      let oc = open_out path in
      output_string oc body;
      close_out oc;
      Printf.printf "metrics written to %s\n" path
  | _ -> ()

(* Per-query total-I/O distribution, printed after the query loop. *)
let make_histo () = Histogram.create ()

let record_histo h ios = Histogram.add h ios

let report_histo h =
  if Histogram.count h > 0 then
    Printf.printf "per-query io: %s\n"
      (Format.asprintf "%a" Histogram.pp h)

let report_pool = function
  | None -> ()
  | Some pool ->
      Printf.printf "pool [%s, %d frames]: %s\n"
        (Buffer_pool.policy_name pool)
        (Buffer_pool.capacity pool)
        (Format.asprintf "%a" Buffer_pool.pp_stats (Buffer_pool.stats pool))

let dist_arg =
  let dist_conv =
    Arg.enum
      [
        ("uniform", Workload.Uniform);
        ("clustered", Workload.Clustered 8);
        ("diagonal", Workload.Diagonal);
        ("skyline", Workload.Skyline);
      ]
  in
  Arg.(value & opt dist_conv Workload.Uniform & info [ "dist" ] ~docv:"DIST"
         ~doc:"Point distribution: uniform, clustered, diagonal, skyline.")

(* [verdict] adds the measured-vs-theorem column: predicted bound and
   measured/predicted ratio for this query (lib/obs/cost_model.mli). *)
let pp_stats_line ?verdict tag t ios stats =
  let conf =
    match verdict with
    | None -> ""
    | Some (v : Cost_model.Conformance.verdict) ->
        Printf.sprintf " bound=%-5.1f ratio=%.2f%s" v.predicted v.ratio
          (if v.within then "" else " VIOLATION")
  in
  Printf.printf "%-14s t=%-6d io=%-4d %s%s\n" tag t ios
    (Format.asprintf "%a" Query_stats.pp stats)
    conf

(* ----- pst (2-sided) ----- *)

let variant_arg =
  let variant_conv =
    Arg.enum
      [
        ("iko", Ext_pst.Iko);
        ("basic", Ext_pst.Basic);
        ("segmented", Ext_pst.Segmented);
        ("two-level", Ext_pst.Two_level);
        ("multilevel", Ext_pst.Multilevel);
      ]
  in
  Arg.(value & opt variant_conv Ext_pst.Two_level & info [ "variant" ] ~docv:"V"
         ~doc:"PST variant: iko, basic, segmented, two-level, multilevel.")

let run_pst_sim n b seed k dist variant cache policy clock slow_log slow_ms
    trace metrics_file =
  let rng = Rng.create seed in
  let pts = Workload.points rng dist ~n ~universe in
  let pool = make_pool cache policy in
  let obs, m, slow = make_obs ~clock ?slow_log ~slow_ms trace metrics_file in
  let t = Ext_pst.create ?pool ?obs ~variant ~b pts in
  Option.iter Buffer_pool.reset_stats pool;
  Printf.printf "built %s over %d points: %d pages (%.2f x n/B)\n%!"
    (Format.asprintf "%a" Ext_pst.pp_variant variant)
    n (Ext_pst.storage_pages t)
    (float_of_int (Ext_pst.storage_pages t) /. float_of_int (max 1 (n / b)));
  let histo = make_histo () in
  List.iter
    (fun (xl, yb) ->
      let res, st = Ext_pst.query t ~xl ~yb in
      record_histo histo (Query_stats.total st);
      let verdict =
        Ext_pst.conformance t ~t_out:(List.length res)
          ~measured:(Query_stats.total st)
      in
      let label = Printf.sprintf "(%d,%d)" xl yb in
      note_violation slow ~label ~measured:(Query_stats.total st) verdict;
      pp_stats_line ~verdict label (List.length res) (Query_stats.total st)
        st)
    (Workload.two_sided_corners rng ~k ~universe);
  report_histo histo;
  report_pool pool;
  finish_obs trace obs;
  finish_slow slow;
  finish_metrics metrics_file m pool

let run_pst n b seed k dist variant cache policy clock slow_log slow_ms
    backend data_dir trace metrics_file =
  match resolve_backend ~cmd:"pst" ~file_supported:false backend data_dir with
  | Error msg -> `Error (false, msg)
  | Ok _ ->
      `Ok
        (run_pst_sim n b seed k dist variant cache policy clock slow_log
           slow_ms trace metrics_file)

let pst_cmd =
  let doc = "Build a 2-sided external PST and run random corner queries." in
  Cmd.v (Cmd.info "pst" ~doc)
    Term.(ret
            (const run_pst $ n_arg $ b_arg $ seed_arg $ queries_arg $ dist_arg
             $ variant_arg $ cache_arg $ policy_arg $ clock_arg
             $ slow_log_arg $ slow_ms_arg $ backend_arg
             $ data_dir_arg $ trace_arg $ metrics_arg))

(* ----- pst3 (3-sided) ----- *)

let width_arg =
  Arg.(value & opt int 100_000 & info [ "width" ] ~docv:"W"
         ~doc:"Approximate x-width of 3-sided queries.")

let run_pst3_on n b seed k dist width clock slow_log slow_ms dir trace
    metrics_file =
  let rng = Rng.create seed in
  let pts = Workload.points rng dist ~n ~universe in
  let obs, m, slow = make_obs ~clock ?slow_log ~slow_ms trace metrics_file in
  (* only the cached structure is traced: one handle per run keeps the
     span stream a single coherent tree; with the file backend it is also
     the one whose pages go to disk (the baseline twin stays simulated) *)
  let cached =
    match dir with
    | None -> Ext_pst3.create ?obs ~mode:Ext_pst3.Cached ~b pts
    | Some dir -> Ext_pst3.create_file ?obs ~dir ~mode:Ext_pst3.Cached ~b pts
  in
  let base = Ext_pst3.create ~mode:Ext_pst3.Baseline ~b pts in
  Printf.printf "3-sided PST over %d points: cached=%d pages, baseline=%d pages%s\n%!"
    n (Ext_pst3.storage_pages cached) (Ext_pst3.storage_pages base)
    (match dir with
    | None -> ""
    | Some dir -> Printf.sprintf " (cached pages on disk under %s)" dir);
  let histo = make_histo () in
  List.iter
    (fun (xl, xr, yb) ->
      let res, st = Ext_pst3.query cached ~xl ~xr ~yb in
      let _, st_b = Ext_pst3.query base ~xl ~xr ~yb in
      record_histo histo (Query_stats.total st);
      let v =
        Ext_pst3.conformance cached ~t_out:(List.length res)
          ~measured:(Query_stats.total st)
      in
      note_violation slow
        ~label:(Printf.sprintf "(%d..%d,y>=%d)" xl xr yb)
        ~measured:(Query_stats.total st) v;
      Printf.printf
        "(%d..%d, y>=%d) t=%-6d cached-io=%-4d baseline-io=%-4d ratio=%.2f%s\n"
        xl xr yb (List.length res) (Query_stats.total st)
        (Query_stats.total st_b) v.Cost_model.Conformance.ratio
        (if v.Cost_model.Conformance.within then "" else " VIOLATION"))
    (Workload.three_sided rng ~k ~universe ~width);
  report_histo histo;
  Ext_pst3.close cached;
  finish_obs trace obs;
  finish_slow slow;
  finish_metrics metrics_file m None

let run_pst3 n b seed k dist width clock slow_log slow_ms backend data_dir
    trace metrics_file =
  match resolve_backend ~cmd:"pst3" ~file_supported:true backend data_dir with
  | Error msg -> `Error (false, msg)
  | Ok dir ->
      `Ok
        (run_pst3_on n b seed k dist width clock slow_log slow_ms dir trace
           metrics_file)

let pst3_cmd =
  let doc = "Build 3-sided external PSTs (cached and baseline) and compare." in
  Cmd.v (Cmd.info "pst3" ~doc)
    Term.(ret
            (const run_pst3 $ n_arg $ b_arg $ seed_arg $ queries_arg $ dist_arg
             $ width_arg $ clock_arg $ slow_log_arg $ slow_ms_arg
             $ backend_arg $ data_dir_arg $ trace_arg $ metrics_arg))

(* ----- stab (interval structures) ----- *)

let structure_arg =
  Arg.(value & opt (enum [ ("segtree", `Seg); ("inttree", `Int); ("pst", `Pst) ]) `Seg
       & info [ "structure" ] ~docv:"S"
           ~doc:"Interval structure: segtree, inttree, or pst (KRV reduction).")

let cached_arg =
  Arg.(value & opt bool true & info [ "cached" ] ~docv:"BOOL"
         ~doc:"Use path caches (false = naive baseline).")

let run_stab_sim n b seed k structure cached clock slow_log slow_ms trace
    metrics_file =
  let rng = Rng.create seed in
  let ivs = Workload.intervals rng Workload.Mixed_ivals ~n ~universe in
  let qs = Workload.stab_queries rng ~k ~universe in
  let obs, m, slow = make_obs ~clock ?slow_log ~slow_ms trace metrics_file in
  let histo = make_histo () in
  let run_queries stab conf =
    List.iter
      (fun q ->
        let res, st = stab q in
        record_histo histo (Query_stats.total st);
        let verdict =
          conf ~t_out:(List.length res) ~measured:(Query_stats.total st)
        in
        let label = Printf.sprintf "stab %d" q in
        note_violation slow ~label ~measured:(Query_stats.total st) verdict;
        pp_stats_line ~verdict label (List.length res)
          (Query_stats.total st) st)
      qs
  in
  (match structure with
  | `Seg ->
      let mode = if cached then Ext_seg.Cached else Ext_seg.Naive in
      let t = Ext_seg.create ?obs ~mode ~b ivs in
      Printf.printf "segment tree (%s): %d pages\n%!"
        (Format.asprintf "%a" Ext_seg.pp_mode mode)
        (Ext_seg.storage_pages t);
      run_queries (Ext_seg.stab t) (Ext_seg.conformance t)
  | `Int ->
      let mode = if cached then Ext_int.Cached else Ext_int.Naive in
      let t = Ext_int.create ?obs ~mode ~b ivs in
      Printf.printf "interval tree (%s): %d pages\n%!"
        (Format.asprintf "%a" Ext_int.pp_mode mode)
        (Ext_int.storage_pages t);
      run_queries (Ext_int.stab t) (Ext_int.conformance t)
  | `Pst ->
      let t = Stabbing.create ?obs ~b ivs in
      Printf.printf "dynamic stabbing store (KRV reduction): %d pages\n%!"
        (Stabbing.storage_pages t);
      run_queries (Stabbing.stab t) (Stabbing.conformance t));
  report_histo histo;
  finish_obs trace obs;
  finish_slow slow;
  finish_metrics metrics_file m None

let run_stab n b seed k structure cached clock slow_log slow_ms backend
    data_dir trace metrics_file =
  match resolve_backend ~cmd:"stab" ~file_supported:false backend data_dir with
  | Error msg -> `Error (false, msg)
  | Ok _ ->
      `Ok
        (run_stab_sim n b seed k structure cached clock slow_log slow_ms
           trace metrics_file)

let stab_cmd =
  let doc = "Build an interval structure and run stabbing queries." in
  Cmd.v (Cmd.info "stab" ~doc)
    Term.(ret
            (const run_stab $ n_arg $ b_arg $ seed_arg $ queries_arg
             $ structure_arg $ cached_arg $ clock_arg $ slow_log_arg
             $ slow_ms_arg $ backend_arg $ data_dir_arg
             $ trace_arg $ metrics_arg))

(* ----- btree ----- *)

let durability_arg =
  Arg.(value & flag & info [ "durability" ]
         ~doc:"Journal the build in a write-ahead log (see DESIGN.md \
               \xc2\xa712): every dirtied page is charged twice (journal \
               record + in-place apply) and the structure becomes \
               crash-recoverable. Off by default; the query path is \
               byte-identical either way.")

let span_arg =
  Arg.(value & opt int 500 & info [ "span" ] ~docv:"SPAN"
         ~doc:"Width of 1-D range queries.")

let run_btree_on n b seed k span cache policy durability clock slow_log
    slow_ms dir trace metrics_file =
  let rng = Rng.create seed in
  let entries = List.init n (fun i -> (i, i)) in
  let pool = make_pool cache policy in
  let obs, m, slow = make_obs ~clock ?slow_log ~slow_ms trace metrics_file in
  let t =
    match dir with
    | Some dir -> Btree.bulk_load_file ?obs ~dir ~b entries
    | None ->
        let wal =
          if durability then Some (Pc_pagestore.Wal.create ()) else None
        in
        Btree.bulk_load_in ?pool ?obs ?durability:wal ~b entries
  in
  let wal = Btree.wal t in
  Option.iter Buffer_pool.reset_stats pool;
  Printf.printf "B+-tree over %d keys: height=%d pages=%d%s%s\n%!" n
    (Btree.height t) (Btree.pages_used t)
    (match wal with
    | Some w ->
        Printf.sprintf " (journaled: %d build writes incl. journal, %d \
                         journal records pending)"
          (Pager.stats (Btree.pager t)).Io_stats.writes
          (Pc_pagestore.Wal.journal_len w)
    | None -> "")
    (match dir with
    | Some dir -> Printf.sprintf " (pages on disk under %s)" dir
    | None -> "");
  let histo = make_histo () in
  for _ = 1 to k do
    let lo = Rng.int rng (max 1 (n - span)) in
    Pager.reset_stats (Btree.pager t);
    let res = Btree.range t ~lo ~hi:(lo + span - 1) in
    let ios = Io_stats.total (Pager.stats (Btree.pager t)) in
    record_histo histo ios;
    let v = Btree.conformance t ~t_out:(List.length res) ~measured:ios in
    note_violation slow
      ~label:(Printf.sprintf "range [%d, %d)" lo (lo + span))
      ~measured:ios v;
    Printf.printf "range [%d, %d): t=%-6d io=%-4d ratio=%.2f%s\n" lo (lo + span)
      (List.length res) ios v.Cost_model.Conformance.ratio
      (if v.Cost_model.Conformance.within then "" else " VIOLATION")
  done;
  report_histo histo;
  report_pool pool;
  Option.iter (fun m -> Pager.export_metrics (Btree.pager t) m) m;
  Btree.close t;
  finish_obs trace obs;
  finish_slow slow;
  finish_metrics metrics_file m pool

let run_btree n b seed k span cache policy durability clock slow_log slow_ms
    backend data_dir trace metrics_file =
  match resolve_backend ~cmd:"btree" ~file_supported:true backend data_dir with
  | Error msg -> `Error (false, msg)
  | Ok (Some _) when cache > 0 ->
      `Error
        (false,
         "--cache attaches a write-back buffer pool, which the file \
          backend does not support; drop --cache or use --backend sim")
  | Ok dir ->
      `Ok
        (run_btree_on n b seed k span cache policy durability clock slow_log
           slow_ms dir trace metrics_file)

let btree_cmd =
  let doc = "Bulk-load an external B+-tree and run range queries." in
  Cmd.v (Cmd.info "btree" ~doc)
    Term.(ret
            (const run_btree $ n_arg $ b_arg $ seed_arg $ queries_arg
             $ span_arg $ cache_arg $ policy_arg $ durability_arg
             $ clock_arg $ slow_log_arg $ slow_ms_arg
             $ backend_arg $ data_dir_arg $ trace_arg $ metrics_arg))

(* ----- replay ----- *)

let run_replay file =
  match Obs.replay_file file with
  | totals ->
      Format.printf "%a@." Obs.pp_totals totals;
      `Ok ()
  | exception Failure msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)

let replay_cmd =
  let doc =
    "Parse a JSONL trace (written with --trace FILE, non-.json extension) \
     and print the I/O totals it replays to. Exits non-zero on input that \
     is not a well-formed trace."
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"JSONL trace file.")
  in
  Cmd.v (Cmd.info "replay" ~doc) Term.(ret (const run_replay $ file_arg))

(* ----- profile ----- *)

let pp_mrc_table ppf curves = Reuse_dist.pp_table ppf curves

let run_profile file flame mrc mrc_json =
  match Obs.Profile.analyze_file file with
  | a ->
      Format.printf "%a@?" Obs.Profile.pp a.Obs.Profile.rows;
      if a.Obs.Profile.has_wall then begin
        (* Timed trace: add the wall-time decomposition — the per-phase
           table and the heaviest chain under each root span. *)
        Format.printf "@\n%a" Obs.Profile.pp_phases a.Obs.Profile.rows;
        Format.printf "@\n%a@?" Obs.Profile.pp_critical a
      end;
      Option.iter
        (fun path ->
          let oc = open_out path in
          Obs.Profile.write_folded oc a;
          close_out oc;
          Printf.printf "folded stacks written to %s\n" path)
        flame;
      if mrc || mrc_json <> None then begin
        let rd = Reuse_dist.of_file file in
        match Reuse_dist.mrcs rd with
        | [] ->
            if mrc then
              Format.printf "@\nmrc: no read references in trace@."
        | curves ->
            if mrc then
              Format.printf "@\nmiss-ratio curves (exact LRU)@\n%a@?"
                pp_mrc_table curves;
            Option.iter
              (fun path ->
                let oc = open_out path in
                output_string oc (Reuse_dist.to_json curves);
                close_out oc;
                Printf.printf "mrc json written to %s\n" path)
              mrc_json
      end;
      `Ok ()
  | exception Failure msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)

let profile_cmd =
  let doc =
    "Aggregate a JSONL trace (written with --trace FILE, non-.json \
     extension) into a per-span-label profile: count, total I/Os, mean \
     and p99 I/Os per span. If the trace carries wall-clock stamps \
     (--clock real or mock), also prints a per-phase wall-time breakdown \
     (device/codec/wal/checksum/pool/other) and the critical path under \
     each root span. Exits non-zero on input that is not a well-formed \
     trace."
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:"JSONL trace file.")
  in
  let flame_arg =
    Arg.(value & opt (some string) None & info [ "flame" ] ~docv:"OUT"
           ~doc:"Also write collapsed stacks (one $(i,path;seq value) \
                 line per frame, flamegraph.pl / speedscope format) to \
                 $(i,OUT); values are wall nanoseconds for timed traces, \
                 I/Os otherwise.")
  in
  let mrc_arg =
    Arg.(value & flag & info [ "mrc" ]
           ~doc:"Also print exact LRU miss-ratio curves per pager source: \
                 the trace's reads and cache hits feed a Mattson \
                 reuse-distance stack, yielding the hit ratio at every \
                 cache size from one pass (DESIGN.md \xc2\xa79).")
  in
  let mrc_json_arg =
    Arg.(value & opt (some string) None & info [ "mrc-json" ] ~docv:"OUT"
           ~doc:"Write the miss-ratio curves as JSON to $(i,OUT).")
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(ret (const run_profile $ file_arg $ flame_arg $ mrc_arg
               $ mrc_json_arg))

(* ----- advise-cache ----- *)

(* Replay mode: fold a JSONL trace through an access profiler and print
   profiles, curves, and the advised split of [budget] frames. *)
let run_advise_trace file budget json_out =
  let ap = Access_profile.create () in
  match Obs.iter_file file (Access_profile.observe ap) with
  | () -> (
      match Reuse_dist.mrcs (Access_profile.reuse ap) with
      | [] -> `Error (false, "trace contains no read references")
      | curves ->
          Format.printf "access profiles@\n%a" Access_profile.pp_profiles
            (Access_profile.profiles ap);
          Format.printf "@\nmiss-ratio curves (exact LRU)@\n%a" pp_mrc_table
            curves;
          let advice = Access_profile.advise curves ~budget in
          Format.printf "@\nrecommended split@\n%a@?" Access_profile.pp_advice
            advice;
          Option.iter
            (fun path ->
              let oc = open_out path in
              output_string oc (Access_profile.advice_json advice);
              close_out oc;
              Printf.printf "advice json written to %s\n" path)
            json_out;
          `Ok ())
  | exception Failure msg -> `Error (false, msg)
  | exception Sys_error msg -> `Error (false, msg)

(* Live mode: two B+-trees with contrasting locality — a hot structure
   whose queries hammer a tiny key range (small working set, the curve
   flattens early) and a uniform one touching everything. Profile both
   at cache 0, advise a split of the budget, then measure the advised
   and even splits for real and report predicted vs actual. *)
let advise_live_structs n = [ ("hot", n / 100); ("uniform", n) ]

let advise_live_workload tree rng ~n ~ops ~span =
  (* [span] keys starting mid-keyspace; uniform when [span = n] *)
  let lo = if span >= n then 0 else n / 2 in
  for _ = 1 to ops do
    ignore (Btree.find tree (lo + Rng.int rng span))
  done

let run_advise_live budget n b seed ops json_out =
  if budget < List.length (advise_live_structs n) then
    `Error (false, "--budget must be at least one frame per structure")
  else begin
    let structs = advise_live_structs n in
    let entries = List.init n (fun i -> (i, i)) in
    (* Profiling pass: cache 0 so the stream is pure Reads; the profiler
       attaches after the build, so curves describe the query phase only —
       matching the measured passes below, which drop the cache first. *)
    let curves =
      List.map
        (fun (name, span) ->
          let obs = Obs.create () in
          let tree = Btree.bulk_load_in ~obs ~b entries in
          let ap = Access_profile.create () in
          Access_profile.attach ap obs;
          advise_live_workload tree (Rng.create seed) ~n ~ops ~span;
          Format.printf "%s: %a" name Access_profile.pp_profiles
            (Access_profile.profiles ap);
          match Reuse_dist.mrcs (Access_profile.reuse ap) with
          | (_, m) :: _ -> (name, m)
          | [] -> failwith "advise-cache: profiling pass saw no references")
        structs
    in
    Format.printf "@\nmiss-ratio curves (exact LRU)@\n%a" pp_mrc_table curves;
    let advice = Access_profile.advise curves ~budget in
    Format.printf "@\nrecommended split@\n%a" Access_profile.pp_advice advice;
    (* Measured pass: one private LRU pool per structure, sized by the
       split under test; deterministic workload regeneration per cell. *)
    let measure frames (_, span) =
      let pool = Buffer_pool.create ~capacity:frames () in
      let tree = Btree.bulk_load_in ~pool ~b entries in
      let pager = Btree.pager tree in
      Pager.drop_cache pager;
      Pager.reset_stats pager;
      advise_live_workload tree (Rng.create seed) ~n ~ops ~span;
      let st = Pager.stats pager in
      (st.Io_stats.cache_hits, st.Io_stats.reads)
    in
    let run_split tag allocs =
      let results =
        List.map2
          (fun (al : Access_profile.alloc) s -> measure al.a_frames s)
          allocs structs
      in
      let misses = List.fold_left (fun acc (_, m) -> acc + m) 0 results in
      Format.printf "@\n%s (measured)@\n" tag;
      List.iter2
        (fun (al : Access_profile.alloc) (hits, miss) ->
          let refs = hits + miss in
          Format.printf
            "  %-8s frames=%-4d predicted-hit%%=%5.1f measured-hit%%=%5.1f@\n"
            al.a_source al.a_frames
            (100. *. Access_profile.alloc_hit_ratio al)
            (if refs = 0 then 0. else 100. *. float_of_int hits /. float_of_int refs))
        allocs results;
      Format.printf "  total misses: %d@\n" misses;
      misses
    in
    let rec_misses = run_split "recommended split" advice.Access_profile.allocs in
    let even_misses = run_split "even split" advice.Access_profile.even in
    Format.printf "@\nmeasured misses: recommended=%d even=%d (%s)@."
      rec_misses even_misses
      (if rec_misses < even_misses then "recommended wins"
       else if rec_misses = even_misses then "tie"
       else "even wins");
    Option.iter
      (fun path ->
        let oc = open_out path in
        output_string oc (Access_profile.advice_json advice);
        close_out oc;
        Printf.printf "advice json written to %s\n" path)
      json_out;
    `Ok ()
  end

let run_advise trace budget n b seed ops json_out =
  match trace with
  | Some file -> run_advise_trace file budget json_out
  | None -> run_advise_live budget n b seed ops json_out

let advise_cmd =
  let doc =
    "Recommend how to split a global frame budget across structures. \
     With $(b,--trace) $(i,FILE), replays a JSONL trace (written with \
     --trace on any build command) through the reuse-distance profiler \
     and advises over its per-source miss-ratio curves. Without it, runs \
     a live demonstration: two B+-trees with contrasting locality (a hot \
     small working set vs uniform access) are profiled, the budget is \
     split by marginal-miss-rate descent, and both the recommended and \
     the naive even split are then measured for real, printing predicted \
     vs actual hit ratios and total misses."
  in
  let trace_in_arg =
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE"
           ~doc:"JSONL trace to replay instead of the live demonstration.")
  in
  let budget_arg =
    Arg.(value & opt int 64 & info [ "budget" ] ~docv:"FRAMES"
           ~doc:"Global frame budget to partition.")
  in
  let ops_arg =
    Arg.(value & opt int 2000 & info [ "ops" ] ~docv:"K"
           ~doc:"Point lookups per structure in the live demonstration.")
  in
  let json_arg =
    Arg.(value & opt (some string) None & info [ "json" ] ~docv:"OUT"
           ~doc:"Write the advice (recommended + even split, predicted \
                 misses) as JSON to $(i,OUT).")
  in
  Cmd.v (Cmd.info "advise-cache" ~doc)
    Term.(ret
            (const run_advise $ trace_in_arg $ budget_arg $ n_arg $ b_arg
             $ seed_arg $ ops_arg $ json_arg))

(* ----- serve-metrics ----- *)

let run_serve_metrics port n b queries data_dir =
  match Metrics_http.run ~port ~n ~b ~queries ~data_dir () with
  | () -> `Ok ()
  | exception Unix.Unix_error (err, fn, _) ->
      `Error
        (false,
         Printf.sprintf "serve-metrics: %s: %s" fn (Unix.error_message err))

let serve_metrics_cmd =
  let doc =
    "Serve a live Prometheus endpoint (plain sockets, no dependencies): \
     builds a journaled file-backed B+-tree with a real clock attached, \
     then answers GET /metrics with the registry in text exposition \
     format — I/O counters plus device/codec/wal latency histograms, \
     including fsync durations from the build. Each scrape first runs a \
     batch of range queries so read-side histograms keep filling. GET \
     /healthz answers ok; GET /quit shuts the server down cleanly."
  in
  let port_arg =
    Arg.(value & opt int 9464 & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port to listen on (loopback only).")
  in
  let qps_arg =
    Arg.(value & opt int 32 & info [ "queries-per-scrape" ] ~docv:"K"
           ~doc:"Random range queries run before each /metrics scrape.")
  in
  Cmd.v (Cmd.info "serve-metrics" ~doc)
    Term.(ret
            (const run_serve_metrics $ port_arg $ n_arg $ b_arg $ qps_arg
             $ data_dir_arg))

(* ----- serve (the session server) ----- *)

let run_serve port workers idle b checkpoint_every =
  match
    Pc_server.Server.start ~port ~workers ~idle_timeout:idle ~b
      ~checkpoint_every ()
  with
  | t ->
      Printf.printf
        "serving on 127.0.0.1:%d with %d worker domain(s) (wire protocol; \
         send `shutdown` to stop)\n%!"
        (Pc_server.Server.port t) workers;
      let on_signal _ = Pc_server.Server.request_stop t in
      (try Sys.set_signal Sys.sigint (Sys.Signal_handle on_signal)
       with Invalid_argument _ -> ());
      (try Sys.set_signal Sys.sigterm (Sys.Signal_handle on_signal)
       with Invalid_argument _ -> ());
      Pc_server.Server.wait t;
      Printf.printf "stopped after %d session(s)\n%!"
        (Pc_server.Server.sessions_served t);
      `Ok ()
  | exception Unix.Unix_error (err, fn, _) ->
      `Error (false, Printf.sprintf "serve: %s: %s" fn (Unix.error_message err))

let serve_cmd =
  let doc =
    "Serve shared point stores over the length-prefixed wire protocol \
     (4-byte big-endian length + one-line text payload): open NAME, \
     insert X Y ID, delete ID, krange LO HI, q3 XL XR YB, stats, close, \
     shutdown. N worker domains each serve whole sessions, so concurrent \
     sessions query in parallel (lock-free snapshot reads, one writer \
     per store). Loopback only."
  in
  let port_arg =
    Arg.(value & opt int 9470 & info [ "port" ] ~docv:"PORT"
           ~doc:"TCP port on loopback (0 picks an ephemeral port).")
  in
  let workers_arg =
    Arg.(value & opt int 4 & info [ "workers" ] ~docv:"N"
           ~doc:"Worker domains accepting sessions.")
  in
  let idle_arg =
    Arg.(value & opt float 5.0 & info [ "idle-timeout" ] ~docv:"SEC"
           ~doc:"Drop connections silent this long.")
  in
  let ckpt_arg =
    Arg.(value & opt int 512 & info [ "checkpoint-every" ] ~docv:"K"
           ~doc:"Overlay size that triggers a store rebuild.")
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(ret (const run_serve $ port_arg $ workers_arg $ idle_arg $ b_arg
               $ ckpt_arg))

(* ----- check ----- *)

(* A concurrent-history repro re-checks the recorded history: the
   interleaving is already captured in the invocation/response stamps,
   so replay is the (deterministic) linearizability decision itself. *)
let run_check_lin file =
  match Pc_check.Lin.load file with
  | Error msg -> `Error (false, msg)
  | Ok h -> (
      Format.printf "re-checking %s: %d domains, %d calls@." file h.domains
        (Array.length h.Pc_check.Lin.calls);
      match Pc_check.Lin.check h with
      | Pc_check.Lin.Linearizable ->
          Format.printf "linearizable@.";
          `Ok ()
      | Pc_check.Lin.Inconclusive msg ->
          Format.printf "inconclusive: %s@." msg;
          exit 2
      | Pc_check.Lin.Violation small ->
          Format.printf "non-linearizable; minimal sub-history:@.%a"
            Pc_check.Lin.pp_history small;
          exit 1)

let run_check file =
  if Pc_check.Lin.is_history_file file then run_check_lin file
  else
  match Pc_check.Repro.load file with
  | Error msg -> `Error (false, msg)
  | Ok repro -> (
      Format.printf "replaying %s: target=%s seed=%d b=%d ops=%d%s@." file
        (Pc_check.Subject.name repro.target)
        repro.seed repro.b
        (Array.length repro.ops)
        (match repro.fault with
        | None -> ""
        | Some k ->
            Format.asprintf " fault=%s" (Pc_pagestore.Fault_plan.kind_to_string k));
      match Pc_check.Repro.replay repro with
      | Pc_check.Engine.Pass ->
          Format.printf "pass@.";
          `Ok ()
      | outcome ->
          Format.printf "%a@." Pc_check.Engine.pp_outcome outcome;
          exit 1)

(* ----- recover ----- *)

(* File-backend recovery: no simulated crash points — the directory's
   bytes are whatever the crash (or kill -9) left behind, and recovery
   reads exactly that. *)
let run_recover_file target_name b dir =
  let finish name size pages check close =
    check ();
    close ();
    Printf.printf "%s: recovered from %s: size=%d pages=%d\n" name dir size
      pages;
    `Ok ()
  in
  match target_name with
  | "btree" ->
      let t = Btree.recover_file ~dir ~b () in
      finish "btree" (Btree.size t)
        (Btree.pages_used t)
        (fun () -> Btree.check_invariants t)
        (fun () -> Btree.close t)
  | "pst3" ->
      let t = Ext_pst3.recover_file ~dir ~b () in
      finish "pst3" (Ext_pst3.size t)
        (Ext_pst3.storage_pages t)
        (fun () -> Ext_pst3.check_invariants t)
        (fun () -> Ext_pst3.close t)
  | other ->
      `Error
        (false,
         Printf.sprintf
           "file-backend recovery supports btree and pst3, not %s" other)

let run_recover target_name nops b seed at torn backend data_dir =
  let module S = Pc_check.Subject in
  let module W = Pc_pagestore.Wal in
  match resolve_backend ~cmd:"recover" ~file_supported:true backend data_dir
  with
  | Error msg -> `Error (false, msg)
  | Ok (Some dir) -> (
      if at <> None || torn then
        `Error
          (false,
           "--at/--torn simulate crash points on the sim backend; the file \
            backend recovers from whatever bytes --data-dir holds")
      else
        try run_recover_file target_name b dir with
        | Invalid_argument msg | Failure msg -> `Error (false, msg)
        | Pc_blockdev.Block_device.Device_error { dev; op; reason; _ } ->
            `Error (false, Printf.sprintf "%s: %s: %s" dev op reason))
  | Ok None -> (
  match S.of_name target_name with
  | None ->
      `Error
        (false,
         Printf.sprintf "unknown target %S (one of: %s)" target_name
           (String.concat ", " (List.map S.name S.all)))
  | Some target -> (
      let rng = Pc_util.Rng.create seed in
      let ops = Pc_check.Dsl.generate rng ~n:nops in
      match at with
      | None ->
          (* Full sweep: crash at every recorded I/O, clean and torn. *)
          let rep = Pc_check.Crash.sweep ~b target ~ops in
          Format.printf "%a@." Pc_check.Crash.pp_report rep;
          if Pc_check.Crash.passed rep then `Ok () else exit 1
      | Some ios ->
          (* One crash point: run the workload journaled, power-fail at
             I/O [ios], recover, and report what recovery cost. *)
          let t = S.start ~b ~durability:true target in
          Array.iter (fun op -> ignore (S.apply t op)) ops;
          S.check t;
          let wal = Option.get (S.wal t) in
          let points = W.crash_points wal in
          if ios > points || (torn && ios >= points) then
            `Error
              (false,
               Printf.sprintf "crash index %d out of range (workload recorded %d I/Os)"
                 ios points)
          else begin
            let r = W.recover (W.image_at ~torn wal ~ios) in
            Format.printf
              "%s: crashed at I/O %d/%d%s -> recovered to op %s@."
              (S.name target) ios points
              (if torn then " (torn)" else "")
              (match (r.W.r_meta, r.W.r_tag) with
              | None, _ -> "(nothing committed: empty structure)"
              | Some _, -1 -> "(initial build)"
              | Some _, tag -> string_of_int tag);
            Format.printf "recovery cost: %a@." Pc_pagestore.Io_stats.pp
              r.W.r_stats;
            (match r.W.r_damaged with
            | [] -> ()
            | d -> Format.printf "damaged pages: %d@." (List.length d));
            `Ok ()
          end))

let recover_cmd =
  let doc =
    "Crash-recovery demonstration: run a journaled workload against a \
     structure, simulate power loss, and recover from the disk image \
     alone. With $(b,--at) $(i,K), crashes at I/O index $(i,K) and \
     prints which operation prefix survived and what recovery cost; \
     without it, sweeps every I/O index (clean and torn) and verifies \
     recovery is idempotent and matches the committed oracle prefix."
  in
  let target_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"TARGET"
           ~doc:"Structure to recover (e.g. btree, dynamic, stabbing).")
  in
  let ops_arg =
    Arg.(value & opt int 24 & info [ "ops" ] ~docv:"N"
           ~doc:"Workload length (generated, deterministic in --seed).")
  in
  let at_arg =
    Arg.(value & opt (some int) None & info [ "at" ] ~docv:"K"
           ~doc:"Crash at I/O index $(i,K) instead of sweeping all.")
  in
  let torn_arg =
    Arg.(value & flag & info [ "torn" ]
           ~doc:"The in-flight write at the crash index reaches the disk \
                 half-transferred.")
  in
  Cmd.v (Cmd.info "recover" ~doc)
    Term.(ret
            (const run_recover $ target_arg $ ops_arg $ b_arg $ seed_arg
             $ at_arg $ torn_arg $ backend_arg $ data_dir_arg))

let check_cmd =
  let doc =
    "Replay a .repro counterexample written by the differential stress \
     harness (check/stress.exe): re-executes the recorded workload \
     against the named structure and its in-memory model. Exits 0 if the \
     run passes, 1 if it still diverges."
  in
  let file_arg =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE"
           ~doc:".repro file.")
  in
  Cmd.v (Cmd.info "check" ~doc) Term.(ret (const run_check $ file_arg))

let () =
  let doc = "Path caching (PODS'94): optimal external searching structures." in
  let info = Cmd.info "pathcache_cli" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            pst_cmd;
            pst3_cmd;
            stab_cmd;
            btree_cmd;
            replay_cmd;
            recover_cmd;
            profile_cmd;
            advise_cmd;
            serve_metrics_cmd;
            serve_cmd;
            check_cmd;
          ]))
