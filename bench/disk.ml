(* E15: wall-clock vs predicted I/O across cache sizes (EXPERIMENTS.md
   E15, DESIGN.md §13).

   The simulator backend counts page I/Os; the file backend performs
   them. Page images are byte-identical across the two, so the
   simulator's count is the prediction and the file backend's clock is
   the measurement: this sweep varies the pager cache size and reports,
   per cell, the per-query I/O count (asserted equal across backends)
   next to the per-query wall-clock on the simulator, the file backend,
   and the file backend with mmap reads.

   Methodology notes, also in EXPERIMENTS.md:
   - B-tree cells start cold ([drop_cache]) and warm over the query
     stream; PST3 cells start with the build-warm cache on both backends
     (the structure does not expose a cache drop), so their I/O count
     reflects a steady-state query stream.
   - Wall-clock numbers are machine-dependent and warm-cache (the OS
     page cache holds the files): they measure syscall + decode +
     checksum cost, not seek latency. They are reported, never gated —
     the regression gate ([bench/regress.exe]) compares I/O counts only.

   Prints a table and writes BENCH_disk.json (CI uploads it as an
   artifact).

   With --phases the bench runs E16 instead (EXPERIMENTS.md E16): the
   same B-tree workload per cache size, but with a real clock on the
   trace handle (null sink — phases are timed, nothing is serialized),
   reporting where the file backend's wall time actually goes:
   device reads and fsyncs vs codec decode vs checksum verification,
   straight from the pager's per-phase histograms.

   Run with: dune exec bench/disk.exe
             dune exec bench/disk.exe -- --fast
             dune exec bench/disk.exe -- --phases [--fast] *)

open Pathcaching

let fast = Array.exists (( = ) "--fast") Sys.argv
let phases_mode = Array.exists (( = ) "--phases") Sys.argv

let out_file =
  let rec find = function
    | "--out" :: f :: _ -> f
    | _ :: tl -> find tl
    | [] -> "BENCH_disk.json"
  in
  find (Array.to_list Sys.argv)

let cache_sizes = [ 4; 16; 64; 256 ]

let temp_root =
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "pc-bench-disk-%d" (Unix.getpid ()))

let rec rm_rf path =
  if Sys.file_exists path then
    if Sys.is_directory path then begin
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Sys.rmdir path
    end
    else Sys.remove path

let wall_stats = function
  | [] -> (0., 0.)
  | times ->
      let sorted = List.sort compare times in
      let len = List.length sorted in
      let mean = List.fold_left ( +. ) 0. sorted /. float_of_int len in
      let p99 = List.nth sorted (min (len - 1) (99 * len / 100)) in
      (mean, p99)

let timeq times f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  times := ((Unix.gettimeofday () -. t0) *. 1e6) :: !times;
  r

type row = {
  structure : string;
  cache : int;
  ios_per_q : float;
  sim_mean : float;
  sim_p99 : float;
  file_mean : float;
  file_p99 : float;
  mmap_mean : float;
  mmap_p99 : float;
}

(* ---- B-tree: cold-start range queries -------------------------------- *)

let btree_rows () =
  let n = if fast then 20_000 else 100_000 in
  let b = 64 in
  let span = max 1 (n / 200) in
  let nq = if fast then 200 else 1_000 in
  let entries = List.init n (fun k -> (k, k)) in
  let qrng = Rng.create 42 in
  let queries = Array.init nq (fun _ -> Rng.int qrng (n - span)) in
  let dir = Filename.concat temp_root "btree" in
  Btree.close (Btree.bulk_load_file ~dir ~b entries);
  let run tree =
    let pager = Btree.pager tree in
    Pager.drop_cache pager;
    Pager.reset_stats pager;
    let times = ref [] in
    Array.iter
      (fun lo ->
        ignore (timeq times (fun () -> Btree.range tree ~lo ~hi:(lo + span))))
      queries;
    let ios = Io_stats.total (Pager.stats pager) in
    (float_of_int ios /. float_of_int nq, wall_stats !times)
  in
  List.map
    (fun cache ->
      let sim = Btree.bulk_load_in ~cache_capacity:cache ~b entries in
      let s_io, (sim_mean, sim_p99) = run sim in
      let ft = Btree.recover_file ~cache_capacity:cache ~dir ~b () in
      let f_io, (file_mean, file_p99) = run ft in
      Btree.close ft;
      let mt = Btree.recover_file ~cache_capacity:cache ~mmap:true ~dir ~b () in
      let m_io, (mmap_mean, mmap_p99) = run mt in
      Btree.close mt;
      if f_io <> s_io || m_io <> s_io then
        Printf.ksprintf failwith
          "btree cache=%d: file backend I/O diverges from simulator (sim \
           %.2f, file %.2f, mmap %.2f per query)"
          cache s_io f_io m_io;
      {
        structure = "btree";
        cache;
        ios_per_q = s_io;
        sim_mean;
        sim_p99;
        file_mean;
        file_p99;
        mmap_mean;
        mmap_p99;
      })
    cache_sizes

(* ---- PST3: steady-state 3-sided queries ------------------------------ *)

let pst3_rows () =
  let universe = 1 lsl 16 in
  let n = if fast then 4_000 else 16_000 in
  let b = 64 in
  let nq = if fast then 100 else 400 in
  let pts = Workload.points (Rng.create 7) Workload.Uniform ~n ~universe in
  let queries =
    let q = Rng.create 42 in
    Array.init nq (fun _ ->
        let xl = Rng.int q universe in
        ( xl,
          min (universe - 1) (xl + (universe / 50)),
          universe - (universe / 8) ))
  in
  let run t3 =
    let times = ref [] in
    let ios = ref 0 in
    Array.iter
      (fun (xl, xr, yb) ->
        let _, st = timeq times (fun () -> Ext_pst3.query t3 ~xl ~xr ~yb) in
        ios := !ios + Query_stats.total st)
      queries;
    (float_of_int !ios /. float_of_int nq, wall_stats !times)
  in
  List.map
    (fun cache ->
      let sim = Ext_pst3.create ~cache_capacity:cache ~mode:Cached ~b pts in
      let s_io, (sim_mean, sim_p99) = run sim in
      let fdir = Filename.concat temp_root (Printf.sprintf "pst3-%d" cache) in
      let ft =
        Ext_pst3.create_file ~cache_capacity:cache ~dir:fdir ~mode:Cached ~b
          pts
      in
      let f_io, (file_mean, file_p99) = run ft in
      Ext_pst3.close ft;
      let mt =
        Ext_pst3.recover_file ~cache_capacity:cache ~mmap:true ~dir:fdir ~b ()
      in
      let _, (mmap_mean, mmap_p99) = run mt in
      Ext_pst3.close mt;
      if f_io <> s_io then
        Printf.ksprintf failwith
          "pst3 cache=%d: file backend I/O diverges from simulator (sim \
           %.2f, file %.2f per query)"
          cache s_io f_io;
      {
        structure = "pst3";
        cache;
        ios_per_q = s_io;
        sim_mean;
        sim_p99;
        file_mean;
        file_p99;
        mmap_mean;
        mmap_p99;
      })
    cache_sizes

(* ---- E16: per-phase wall-time decomposition (--phases) --------------- *)

(* Build + query a file-backed B-tree per cache size with a real clock on
   the trace handle; the pager's phase histograms then say where the
   wall time went. The build is journaled, so encode/write/fsync phases
   come from it; the query stream contributes read/decode/checksum. *)

type phase_row = {
  p_cache : int;
  p_queries : int;
  p_phases : (string * (int * int)) list; (* phase -> (count, total ns) *)
}

let phase_columns =
  [ "dev.read"; "dev.write"; "dev.fsync"; "codec.encode"; "codec.decode";
    "checksum.verify" ]

let phases_rows () =
  let n = if fast then 20_000 else 100_000 in
  let b = 64 in
  let span = max 1 (n / 200) in
  let nq = if fast then 200 else 1_000 in
  let entries = List.init n (fun k -> (k, k)) in
  let qrng = Rng.create 42 in
  let queries = Array.init nq (fun _ -> Rng.int qrng (n - span)) in
  let clock =
    Obs.Clock.of_fn (fun () -> int_of_float (Unix.gettimeofday () *. 1e9))
  in
  List.map
    (fun cache ->
      let obs = Obs.create ~clock () in
      let dir = Filename.concat temp_root (Printf.sprintf "phases-%d" cache) in
      let t = Btree.bulk_load_file ~cache_capacity:cache ~obs ~dir ~b entries in
      let pager = Btree.pager t in
      Pager.drop_cache pager;
      Array.iter
        (fun lo -> ignore (Btree.range t ~lo ~hi:(lo + span)))
        queries;
      let phases =
        List.map
          (fun (ph, h) -> (ph, (Histogram.count h, Histogram.total h)))
          (Pager.phase_histograms pager)
      in
      Btree.close t;
      { p_cache = cache; p_queries = nq; p_phases = phases })
    cache_sizes

let run_phases () =
  let rows =
    Fun.protect
      ~finally:(fun () -> rm_rf temp_root)
      (fun () -> phases_rows ())
  in
  Printf.printf "E16: per-phase wall time, file-backed btree (%s)\n%-6s"
    (if fast then "fast" else "full")
    "cache";
  List.iter (Printf.printf " %15s") phase_columns;
  print_newline ();
  let get r ph = Option.value ~default:(0, 0) (List.assoc_opt ph r.p_phases) in
  List.iter
    (fun r ->
      Printf.printf "%-6d" r.p_cache;
      List.iter
        (fun ph ->
          let _, ns = get r ph in
          Printf.printf " %13.2fms" (float_of_int ns /. 1e6))
        phase_columns;
      print_newline ())
    rows;
  let oc = open_out out_file in
  Printf.fprintf oc
    "{\"schema\":\"pathcache-bench-phases-v1\",\"fast\":%b,\"rows\":[\n" fast;
  List.iteri
    (fun i r ->
      Printf.fprintf oc "  {\"cache\":%d,\"queries\":%d,\"phases\":{"
        r.p_cache r.p_queries;
      List.iteri
        (fun j (ph, (count, ns)) ->
          Printf.fprintf oc "%s\"%s\":{\"count\":%d,\"total_ns\":%d}"
            (if j = 0 then "" else ",")
            ph count ns)
        r.p_phases;
      Printf.fprintf oc "}}%s\n"
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out_file

(* ---- report ---------------------------------------------------------- *)

let run_e15 () =
  let rows =
    Fun.protect
      ~finally:(fun () -> rm_rf temp_root)
      (fun () -> btree_rows () @ pst3_rows ())
  in
  Printf.printf
    "E15: wall-clock vs predicted I/O across cache sizes (%s)\n\
     %-9s %6s %8s | %17s | %17s | %17s\n"
    (if fast then "fast" else "full")
    "structure" "cache" "ios/q" "sim mean/p99 us" "file mean/p99 us"
    "mmap mean/p99 us";
  List.iter
    (fun r ->
      Printf.printf
        "%-9s %6d %8.2f | %8.1f %8.1f | %8.1f %8.1f | %8.1f %8.1f\n"
        r.structure r.cache r.ios_per_q r.sim_mean r.sim_p99 r.file_mean
        r.file_p99 r.mmap_mean r.mmap_p99)
    rows;
  let oc = open_out out_file in
  Printf.fprintf oc
    "{\"schema\":\"pathcache-bench-disk-v1\",\"fast\":%b,\"rows\":[\n" fast;
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "  {\"structure\":\"%s\",\"cache\":%d,\"ios_per_query\":%.3f,\"sim_mean_us\":%.1f,\"sim_p99_us\":%.1f,\"file_mean_us\":%.1f,\"file_p99_us\":%.1f,\"mmap_mean_us\":%.1f,\"mmap_p99_us\":%.1f}%s\n"
        r.structure r.cache r.ios_per_q r.sim_mean r.sim_p99 r.file_mean
        r.file_p99 r.mmap_mean r.mmap_p99
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]}\n";
  close_out oc;
  Printf.printf "wrote %s\n" out_file

let () =
  rm_rf temp_root;
  Unix.mkdir temp_root 0o755;
  if phases_mode then run_phases () else run_e15 ()
