(* E19: service under injected device faults (DESIGN.md §15,
   EXPERIMENTS.md E19).

   One file-less B-tree on a capacity-0 pager over a seeded
   Flaky_dev, the default retry policy installed with a real
   backoff sleep. Three cells sweep the per-transfer fault rate —
   0 (baseline), 0.1% and 1% — each mixing transient read/write
   errors (burst 2) and torn page writes at that rate. Every cell
   runs the same seeded stream of inserts, deletes and range
   queries; every 16th range answer is checked against an
   in-memory oracle, so the cell measures the cost of absorbing
   faults, never the cost of being wrong.

   Reported per cell: throughput, p50/p99 operation latency,
   availability (operations answered / attempted), retries the
   pager absorbed and faults the device injected. Gates:

   - conformance: zero oracle violations anywhere;
   - availability >= 99% at every cell (the burst fits the retry
     budget, so a denial means the retry layer is broken);
   - the baseline cell must see zero injected faults and zero
     retries (the fault-free path pays nothing).

   Run with: dune exec bench/chaos.exe -- [--fast] [--out FILE] *)

module Bdev = Pc_blockdev.Block_device
module Flaky = Pc_blockdev.Flaky_dev
module Pager = Pc_pagestore.Pager
module Retry_policy = Pc_pagestore.Retry_policy
module Btree = Pc_btree.Btree
module Rng = Pc_util.Rng

let fast = Array.exists (( = ) "--fast") Sys.argv

let out_file =
  let rec find = function
    | "--out" :: f :: _ -> f
    | _ :: tl -> find tl
    | [] -> "BENCH_chaos.json"
  in
  find (Array.to_list Sys.argv)

let key_universe = 50_000

type cell = {
  rate : float;
  ops : int;
  ok : int;
  denied : int;
  violations : int;
  seconds : float;
  p50_us : float;
  p99_us : float;
  retries : int;
  give_ups : int;
  injected : Flaky.counts;
}

let availability c =
  let attempted = c.ok + c.denied in
  if attempted = 0 then 1.0 else float_of_int c.ok /. float_of_int attempted

let percentile sorted p =
  let len = Array.length sorted in
  if len = 0 then 0.0 else sorted.(min (len - 1) (p * len / 100))

(* One cell: [n] warm entries, then [ops] timed operations under the
   profile's fault rate. Deterministic in [seed] except for wall time. *)
let run_cell ~b ~seed ~n ~ops ~rate =
  let profile =
    {
      Flaky.quiet with
      Flaky.seed;
      p_transient = rate;
      transient_burst = 2;
      p_torn = rate;
    }
  in
  let base = Bdev.mem ~page_bytes:(Btree.page_bytes ~b) () in
  let dev, ctl = Flaky.wrap ~profile base in
  Flaky.set_enabled ctl false;
  let pager =
    Pager.create ~backend:{ Pager.dev; codec = Btree.codec } ~page_capacity:b ()
  in
  Pager.set_retry_policy pager
    ~sleep:(fun ns -> Unix.sleepf (float_of_int ns /. 1e9))
    Retry_policy.default;
  let tree = Btree.create pager in
  let rng = Rng.create seed in
  let oracle = ref [] in
  let insert () =
    let key = Rng.int rng key_universe in
    let value = Rng.int rng key_universe in
    Btree.insert tree ~key ~value;
    oracle := (key, value) :: !oracle
  in
  for _ = 1 to n do
    insert ()
  done;
  (* the warm tree is in place; the storm begins *)
  Flaky.set_enabled ctl true;
  let lat = Array.make ops 0.0 in
  let ok = ref 0 and denied = ref 0 and violations = ref 0 in
  let t_start = Unix.gettimeofday () in
  for i = 0 to ops - 1 do
    let t0 = Unix.gettimeofday () in
    (match
       if i mod 4 = 3 then begin
         let lo = Rng.int rng key_universe in
         let hi = lo + Rng.int rng 100 in
         let got = Btree.range tree ~lo ~hi in
         if i mod 16 = 15 then begin
           let want =
             List.filter (fun (k, _) -> lo <= k && k <= hi) !oracle
             |> List.sort compare
           in
           if got <> want then incr violations
         end
       end
       else insert ()
     with
    | () -> incr ok
    | exception Pager.Io_fault _ -> incr denied);
    lat.(i) <- (Unix.gettimeofday () -. t0) *. 1e6
  done;
  let seconds = Unix.gettimeofday () -. t_start in
  Array.sort compare lat;
  {
    rate;
    ops;
    ok = !ok;
    denied = !denied;
    violations = !violations;
    seconds;
    p50_us = percentile lat 50;
    p99_us = percentile lat 99;
    retries = (Pager.stats pager).Pc_pagestore.Io_stats.retries;
    give_ups = Pager.give_ups pager;
    injected = Flaky.counts ctl;
  }

let () =
  let b = 16 in
  let n = if fast then 5_000 else 20_000 in
  let ops = if fast then 8_000 else 40_000 in
  let seed = 42 in
  let rates = [ 0.0; 0.001; 0.01 ] in
  Printf.printf
    "E19 service under injected faults: n=%d warm, %d timed ops/cell, b=%d, \
     default retry policy (8 attempts, 100us base, real backoff sleep)\n\n"
    n ops b;
  Printf.printf "%8s %10s %12s %9s %9s %8s %8s %9s %11s\n" "rate" "ops/s"
    "avail" "p50us" "p99us" "retries" "giveups" "injected" "violations";
  let cells =
    List.map
      (fun rate ->
        let c = run_cell ~b ~seed ~n ~ops ~rate in
        let injected =
          c.injected.Flaky.transients + c.injected.Flaky.torn
        in
        Printf.printf "%8.3f %10.0f %12.4f %9.1f %9.1f %8d %8d %9d %11d\n"
          (rate *. 100.)
          (float_of_int c.ops /. c.seconds)
          (availability c) c.p50_us c.p99_us c.retries c.give_ups injected
          c.violations;
        c)
      rates
  in
  (* persist *)
  let oc = open_out out_file in
  Printf.fprintf oc "{\n  \"experiment\": \"E19\",\n";
  Printf.fprintf oc "  \"n\": %d,\n  \"ops_per_cell\": %d,\n  \"b\": %d,\n" n
    ops b;
  Printf.fprintf oc "  \"cells\": [\n";
  List.iteri
    (fun i c ->
      Printf.fprintf oc
        "    {\"rate\": %g, \"ops_per_s\": %.0f, \"availability\": %.4f, \
         \"p50_us\": %.1f, \"p99_us\": %.1f, \"retries\": %d, \"give_ups\": \
         %d, \"injected_transients\": %d, \"injected_torn\": %d, \
         \"violations\": %d}%s\n"
        c.rate
        (float_of_int c.ops /. c.seconds)
        (availability c) c.p50_us c.p99_us c.retries c.give_ups
        c.injected.Flaky.transients c.injected.Flaky.torn c.violations
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Printf.printf "\nwrote %s\n" out_file;
  (* gates *)
  let failed = ref false in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        failed := true;
        Printf.printf "E19 FAILED: %s\n" m)
      fmt
  in
  List.iter
    (fun c ->
      if c.violations > 0 then
        fail "%d oracle violation(s) at rate %g" c.violations c.rate;
      if availability c < 0.99 then
        fail "availability %.4f < 0.99 at rate %g" (availability c) c.rate)
    cells;
  (match cells with
  | base :: _ ->
      if base.injected.Flaky.transients + base.injected.Flaky.torn > 0 then
        fail "baseline cell injected faults";
      if base.retries > 0 then fail "baseline cell absorbed retries"
  | [] -> ());
  if !failed then exit 1;
  Printf.printf
    "gate: conformance clean, availability >= 0.99 at every rate, fault-free \
     baseline untouched — pass\n"
