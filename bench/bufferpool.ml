(* Buffer-pool replacement-policy sweep.

   Measures hit rate and total page I/Os for each replacement policy
   (LRU, FIFO, CLOCK, 2Q) across pool sizes and access workloads against
   a bulk-loaded B+-tree on the simulated disk:

   - [uniform]:  point lookups i.i.d. over the whole key space;
   - [clustered]: 90% of lookups land in a hot 2% key range;
   - [seqflood]: hot-range lookups interleaved with full-range scans —
     the adversary for LRU (each scan floods the pool and evicts the hot
     set) and the case 2Q's probationary queue is built for.

   Prints a table and writes BENCH_bufferpool.json.

   With --mrc, runs experiment E17 instead: one profiling pass per
   workload builds the exact LRU miss-ratio curve from the reuse
   distances of the uncached reference stream, then every budget in
   {4..256} x policy is measured for real. The LRU column must match
   the prediction within 1% at every budget (the run self-gates) —
   Mattson's stack algorithm vs the actual pool — and the other
   policies' distance from the curve quantifies their cost. Writes
   BENCH_mrc.json.

   Run with: dune exec bench/bufferpool.exe
             dune exec bench/bufferpool.exe -- --fast
             dune exec bench/bufferpool.exe -- --mrc [--fast] *)

open Pathcaching

let fast = Array.exists (( = ) "--fast") Sys.argv
let mrc_mode = Array.exists (( = ) "--mrc") Sys.argv
let n_keys = if fast then 20_000 else 50_000
let n_ops = if fast then 400 else 2_000
let b = 64
let pool_sizes = [ 16; 64; 256 ]
let policies = Replacement.all

type workload = Uniform | Clustered | Seqflood

let workloads = [ Uniform; Clustered; Seqflood ]

let workload_name = function
  | Uniform -> "uniform"
  | Clustered -> "clustered"
  | Seqflood -> "seqflood"

(* The deterministic op sequence, shared by the measured cells and the
   MRC profiling pass so both see the identical reference stream. *)
let run_ops tree workload =
  let pager = Btree.pager tree in
  let rng = Rng.create 42 in
  let hot_lo = n_keys / 2 in
  (* ~16 leaf pages: small enough that mid-size pools could hold it *)
  let hot_hi = hot_lo + (n_keys / 50) in
  let lookup k = ignore (Btree.find tree k) in
  for op = 1 to n_ops do
    match workload with
    | Uniform -> lookup (Rng.int rng n_keys)
    | Clustered ->
        if Rng.int rng 10 < 9 then lookup (Rng.int_in rng ~lo:hot_lo ~hi:hot_hi)
        else lookup (Rng.int rng n_keys)
    | Seqflood ->
        (* mostly hot-range lookups; every 100th op is a scan over ~4x
           the largest pool (1024 leaves), flooding any recency-based
           pool *)
        if op mod 100 = 0 then (
          Pager.advise_normal pager;
          ignore (Btree.range tree ~lo:0 ~hi:(1024 * (b - 1))))
        else lookup (Rng.int_in rng ~lo:hot_lo ~hi:hot_hi)
  done

(* One policy × pool-size × workload cell: build the tree into a fresh
   pool-backed pager, cold-start, run the op sequence, read the counters. *)
let run_cell ~policy ~pool_size ~workload =
  let pool = Buffer_pool.create ~policy ~capacity:pool_size () in
  let entries = List.init n_keys (fun k -> (k, k)) in
  let tree = Btree.bulk_load_in ~pool ~b entries in
  let pager = Btree.pager tree in
  Pager.drop_cache pager;
  Pager.reset_stats pager;
  Buffer_pool.reset_stats pool;
  run_ops tree workload;
  let st = Pager.stats pager in
  let accesses = st.Io_stats.reads + st.Io_stats.cache_hits in
  let hit_rate =
    if accesses = 0 then 0.
    else float_of_int st.Io_stats.cache_hits /. float_of_int accesses
  in
  (hit_rate, Io_stats.total st)

(* E17 profiling pass: same tree, same ops, but uncached and with the
   reuse-distance profiler attached after the build — its shadow stack
   starts cold exactly like the dropped cache of the measured cells, so
   the curve predicts them. *)
let profile_workload workload =
  let obs = Obs.create () in
  let entries = List.init n_keys (fun k -> (k, k)) in
  let tree = Btree.bulk_load_in ~obs ~b entries in
  let rd = Reuse_dist.create () in
  Reuse_dist.attach rd obs;
  run_ops tree workload;
  match Reuse_dist.mrcs rd with
  | (_, m) :: _ -> m
  | [] -> failwith "mrc profiling pass saw no references"

(* ----- E17: measured hit ratio vs the MRC prediction ----- *)

let mrc_budgets = [ 4; 8; 16; 32; 64; 128; 256 ]

let run_mrc () =
  Printf.printf
    "E17 MRC vs measured: B+-tree n=%d B=%d, %d ops per cell, LRU gated \
     at 1%%\n"
    n_keys b n_ops;
  let cells = ref [] in
  let worst = ref 0. in
  List.iter
    (fun workload ->
      let m = profile_workload workload in
      Printf.printf
        "\n==== %s ====  (profiled: %d accesses, %d cold, flattens at %d \
         frames)\n"
        (workload_name workload)
        (Reuse_dist.accesses m) (Reuse_dist.cold m) (Reuse_dist.flat_at m);
      Printf.printf "%8s | %9s |" "pool" "pred-lru";
      List.iter (fun p -> Printf.printf " %9s" (Replacement.name p)) policies;
      Printf.printf "\n";
      List.iter
        (fun budget ->
          let pred = Reuse_dist.hit_ratio m budget in
          Printf.printf "%8d | %8.1f%% |" budget (100. *. pred);
          let measured =
            List.map
              (fun policy ->
                let h, _ = run_cell ~policy ~pool_size:budget ~workload in
                Printf.printf " %8.1f%%" (100. *. h);
                (policy, h))
              policies
          in
          let lru = List.assoc Replacement.Lru measured in
          let delta = Float.abs (pred -. lru) in
          if delta > !worst then worst := delta;
          if delta > 0.01 then Printf.printf "  LRU OFF-CURVE (%.3f)" delta;
          Printf.printf "\n";
          cells := (workload, budget, pred, measured) :: !cells)
        mrc_budgets)
    workloads;
  Printf.printf "\nworst |predicted - measured| for LRU: %.4f (gate 0.01)\n"
    !worst;
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"mrc-vs-measured\",\n\
       \  \"tree\": {\"n\": %d, \"b\": %d},\n\
       \  \"ops_per_cell\": %d,\n  \"seed\": 42,\n\
       \  \"worst_lru_delta\": %.6f,\n  \"cells\": [\n" n_keys b n_ops !worst);
  let cells = List.rev !cells in
  List.iteri
    (fun i (w, budget, pred, measured) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"pool_size\": %d, \"predicted_lru\": \
            %.4f, \"measured\": {%s}}%s\n"
           (workload_name w) budget pred
           (String.concat ", "
              (List.map
                 (fun (p, h) ->
                   Printf.sprintf "\"%s\": %.4f" (Replacement.name p) h)
                 measured))
           (if i = List.length cells - 1 then "" else ",")))
    cells;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_mrc.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "wrote BENCH_mrc.json (%d cells)\n" (List.length cells);
  if !worst > 0.01 then begin
    Printf.printf "E17 FAILED: LRU measurement left the predicted curve\n";
    exit 1
  end

let run_sweep () =
  Printf.printf
    "Buffer-pool policy sweep: B+-tree n=%d B=%d, %d ops per cell\n" n_keys b
    n_ops;
  let cells = ref [] in
  List.iter
    (fun workload ->
      Printf.printf "\n==== %s ====\n" (workload_name workload);
      Printf.printf "%8s |" "pool";
      List.iter (fun p -> Printf.printf " %16s" (Replacement.name p)) policies;
      Printf.printf "\n%8s |" "";
      List.iter (fun _ -> Printf.printf " %9s %6s" "hit%" "io") policies;
      print_newline ();
      List.iter
        (fun pool_size ->
          Printf.printf "%8d |" pool_size;
          List.iter
            (fun policy ->
              let hit_rate, total = run_cell ~policy ~pool_size ~workload in
              cells :=
                (workload, policy, pool_size, hit_rate, total) :: !cells;
              Printf.printf " %8.1f%% %6d" (100. *. hit_rate) total)
            policies;
          print_newline ())
        pool_sizes)
    workloads;
  (* scan-resistance headline: 2Q vs LRU on the flood workload *)
  let find w p s =
    List.find_map
      (fun (w', p', s', h, t) ->
        if w' = w && p' = p && s' = s then Some (h, t) else None)
      !cells
  in
  (match (find Seqflood Replacement.Two_q 64, find Seqflood Replacement.Lru 64)
   with
  | Some (h2q, io2q), Some (hlru, iolru) ->
      Printf.printf
        "\nseqflood @ pool 64: 2q %.1f%% hits / %d IOs vs lru %.1f%% / %d IOs\n"
        (100. *. h2q) io2q (100. *. hlru) iolru
  | _ -> ());
  (* JSON ledger, hand-rendered (no JSON dependency in the tree) *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"bufferpool-policy-sweep\",\n\
       \  \"tree\": {\"n\": %d, \"b\": %d},\n\
       \  \"ops_per_cell\": %d,\n  \"seed\": 42,\n  \"cells\": [\n" n_keys b
       n_ops);
  let cells = List.rev !cells in
  List.iteri
    (fun i (w, p, s, h, t) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"policy\": %S, \"pool_size\": %d, \
            \"hit_rate\": %.4f, \"total_ios\": %d}%s\n"
           (workload_name w) (Replacement.name p) s h t
           (if i = List.length cells - 1 then "" else ",")))
    cells;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_bufferpool.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote BENCH_bufferpool.json (%d cells)\n" (List.length cells)

let () = if mrc_mode then run_mrc () else run_sweep ()
