(* Buffer-pool replacement-policy sweep.

   Measures hit rate and total page I/Os for each replacement policy
   (LRU, FIFO, CLOCK, 2Q) across pool sizes and access workloads against
   a bulk-loaded B+-tree on the simulated disk:

   - [uniform]:  point lookups i.i.d. over the whole key space;
   - [clustered]: 90% of lookups land in a hot 2% key range;
   - [seqflood]: hot-range lookups interleaved with full-range scans —
     the adversary for LRU (each scan floods the pool and evicts the hot
     set) and the case 2Q's probationary queue is built for.

   Prints a table and writes BENCH_bufferpool.json.

   Run with: dune exec bench/bufferpool.exe
             dune exec bench/bufferpool.exe -- --fast *)

open Pathcaching

let fast = Array.exists (( = ) "--fast") Sys.argv
let n_keys = if fast then 20_000 else 50_000
let n_ops = if fast then 400 else 2_000
let b = 64
let pool_sizes = [ 16; 64; 256 ]
let policies = Replacement.all

type workload = Uniform | Clustered | Seqflood

let workloads = [ Uniform; Clustered; Seqflood ]

let workload_name = function
  | Uniform -> "uniform"
  | Clustered -> "clustered"
  | Seqflood -> "seqflood"

(* One policy × pool-size × workload cell: build the tree into a fresh
   pool-backed pager, cold-start, run the op sequence, read the counters. *)
let run_cell ~policy ~pool_size ~workload =
  let pool = Buffer_pool.create ~policy ~capacity:pool_size () in
  let entries = List.init n_keys (fun k -> (k, k)) in
  let tree = Btree.bulk_load_in ~pool ~b entries in
  let pager = Btree.pager tree in
  Pager.drop_cache pager;
  Pager.reset_stats pager;
  Buffer_pool.reset_stats pool;
  let rng = Rng.create 42 in
  let hot_lo = n_keys / 2 in
  (* ~16 leaf pages: small enough that mid-size pools could hold it *)
  let hot_hi = hot_lo + (n_keys / 50) in
  let lookup k = ignore (Btree.find tree k) in
  for op = 1 to n_ops do
    match workload with
    | Uniform -> lookup (Rng.int rng n_keys)
    | Clustered ->
        if Rng.int rng 10 < 9 then lookup (Rng.int_in rng ~lo:hot_lo ~hi:hot_hi)
        else lookup (Rng.int rng n_keys)
    | Seqflood ->
        (* mostly hot-range lookups; every 100th op is a scan over ~4x
           the largest pool (1024 leaves), flooding any recency-based
           pool *)
        if op mod 100 = 0 then (
          Pager.advise_normal pager;
          ignore (Btree.range tree ~lo:0 ~hi:(1024 * (b - 1))))
        else lookup (Rng.int_in rng ~lo:hot_lo ~hi:hot_hi)
  done;
  let st = Pager.stats pager in
  let accesses = st.Io_stats.reads + st.Io_stats.cache_hits in
  let hit_rate =
    if accesses = 0 then 0.
    else float_of_int st.Io_stats.cache_hits /. float_of_int accesses
  in
  (hit_rate, Io_stats.total st)

let () =
  Printf.printf
    "Buffer-pool policy sweep: B+-tree n=%d B=%d, %d ops per cell\n" n_keys b
    n_ops;
  let cells = ref [] in
  List.iter
    (fun workload ->
      Printf.printf "\n==== %s ====\n" (workload_name workload);
      Printf.printf "%8s |" "pool";
      List.iter (fun p -> Printf.printf " %16s" (Replacement.name p)) policies;
      Printf.printf "\n%8s |" "";
      List.iter (fun _ -> Printf.printf " %9s %6s" "hit%" "io") policies;
      print_newline ();
      List.iter
        (fun pool_size ->
          Printf.printf "%8d |" pool_size;
          List.iter
            (fun policy ->
              let hit_rate, total = run_cell ~policy ~pool_size ~workload in
              cells :=
                (workload, policy, pool_size, hit_rate, total) :: !cells;
              Printf.printf " %8.1f%% %6d" (100. *. hit_rate) total)
            policies;
          print_newline ())
        pool_sizes)
    workloads;
  (* scan-resistance headline: 2Q vs LRU on the flood workload *)
  let find w p s =
    List.find_map
      (fun (w', p', s', h, t) ->
        if w' = w && p' = p && s' = s then Some (h, t) else None)
      !cells
  in
  (match (find Seqflood Replacement.Two_q 64, find Seqflood Replacement.Lru 64)
   with
  | Some (h2q, io2q), Some (hlru, iolru) ->
      Printf.printf
        "\nseqflood @ pool 64: 2q %.1f%% hits / %d IOs vs lru %.1f%% / %d IOs\n"
        (100. *. h2q) io2q (100. *. hlru) iolru
  | _ -> ());
  (* JSON ledger, hand-rendered (no JSON dependency in the tree) *)
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\n  \"experiment\": \"bufferpool-policy-sweep\",\n\
       \  \"tree\": {\"n\": %d, \"b\": %d},\n\
       \  \"ops_per_cell\": %d,\n  \"seed\": 42,\n  \"cells\": [\n" n_keys b
       n_ops);
  let cells = List.rev !cells in
  List.iteri
    (fun i (w, p, s, h, t) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"workload\": %S, \"policy\": %S, \"pool_size\": %d, \
            \"hit_rate\": %.4f, \"total_ios\": %d}%s\n"
           (workload_name w) (Replacement.name p) s h t
           (if i = List.length cells - 1 then "" else ",")))
    cells;
  Buffer.add_string buf "  ]\n}\n";
  let oc = open_out "BENCH_bufferpool.json" in
  output_string oc (Buffer.contents buf);
  close_out oc;
  Printf.printf "\nwrote BENCH_bufferpool.json (%d cells)\n" (List.length cells)
