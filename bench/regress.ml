(* The benchmark regression gate (see lib/obs/bench_gate.mli).

   Fixed-seed workloads over all nine external structures; every query is
   conformance-checked against its theorem bound and folded into one
   baseline entry per (experiment, structure, n, b) cell. No buffer pool
   and no randomness outside the seeded [Rng], so a clean tree reproduces
   the committed baseline exactly.

   Run with:
     dune exec bench/regress.exe                      run + print table
     dune exec bench/regress.exe -- --write FILE      refresh the baseline
     dune exec bench/regress.exe -- --diff FILE       gate: exit 1 on
                                                      regression/violation
     dune exec bench/regress.exe -- --report FILE     conformance report
     dune exec bench/regress.exe -- --prom FILE       Prometheus dump
     dune exec bench/regress.exe -- --tolerance 0.15  override the 10% *)

open Pathcaching

let universe = 1_000_000
let seed = 42

(* one registry + a metrics-only trace handle shared by every build; the
   Prometheus dump (--prom) is CI's metrics artifact *)
let metrics = Metrics.create ()
let obs = Obs.create ()
let () = Metrics.attach metrics obs

let global = Cost_model.Conformance.summary ()

(* per-query wall-clock samples (µs) for the cell being measured; each
   experiment wraps its query in [timeq] and [cell] drains the buffer.
   Wall-clock rides in the baseline as a reported column only — the
   gate never compares it (machine-dependent). *)
let times_us = ref []

let timeq f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  times_us := ((Unix.gettimeofday () -. t0) *. 1e6) :: !times_us;
  r

(* fold one cell's verdicts into a baseline entry *)
let cell ~experiment ~structure ~n ~b verdicts =
  let histo = Histogram.create () in
  let summary = Cost_model.Conformance.summary () in
  List.iter
    (fun (v : Cost_model.Conformance.verdict) ->
      Histogram.add histo v.measured;
      Cost_model.Conformance.record summary v;
      Cost_model.Conformance.record global v)
    verdicts;
  let times = !times_us in
  times_us := [];
  Bench_gate.entry_of_verdicts ~times_us:times ~experiment ~structure ~histo
    ~summary ~n ~b ()

(* ------------------------------------------------------------------ *)
(* Workloads                                                          *)
(* ------------------------------------------------------------------ *)

(* deep corners with small output isolate the log_B n search term *)
let deep_corners k = List.init k (fun i -> (universe - 3000 - (i * 100), i * 3))

let r1_btree () =
  let n = 20000 and b = 64 in
  let entries = List.init n (fun i -> (i * 7, i)) in
  let bt = Btree.bulk_load_in ~obs ~b entries in
  let rng = Rng.create seed in
  let verdicts =
    List.init 20 (fun i ->
        let width = [| 10; 100; 1000 |].(i mod 3) in
        let lo = Rng.int rng (n * 7) in
        Pager.reset_stats (Btree.pager bt);
        let res = timeq (fun () -> Btree.range bt ~lo ~hi:(lo + width)) in
        let measured = Io_stats.total (Pager.stats (Btree.pager bt)) in
        Btree.conformance bt ~t_out:(List.length res) ~measured)
  in
  [ cell ~experiment:"R1" ~structure:(Btree.cost_model bt) ~n ~b verdicts ]

let r2_pst2 () =
  let n = 16000 and b = 64 in
  let rng = Rng.create seed in
  let pts = Workload.points rng Workload.Uniform ~n ~universe in
  List.map
    (fun v ->
      let t = Ext_pst.create ~obs ~variant:v ~b pts in
      let verdicts =
        List.map
          (fun (xl, yb) ->
            let res, st = timeq (fun () -> Ext_pst.query t ~xl ~yb) in
            Ext_pst.conformance t ~t_out:(List.length res)
              ~measured:(Query_stats.total st))
          (deep_corners 15)
      in
      cell ~experiment:"R2" ~structure:(Ext_pst.cost_model t) ~n ~b verdicts)
    Ext_pst.all_variants

let r3_pst3 () =
  let n = 16000 and b = 64 in
  let rng = Rng.create seed in
  let pts = Workload.points rng Workload.Uniform ~n ~universe in
  List.map
    (fun mode ->
      let t = Ext_pst3.create ~obs ~mode ~b pts in
      let qrng = Rng.create (seed + 1) in
      let verdicts =
        List.init 15 (fun _ ->
            let xl = Rng.int qrng universe in
            let xr = min (universe - 1) (xl + (universe / 50)) in
            let yb = universe - 4000 in
            let res, st = timeq (fun () -> Ext_pst3.query t ~xl ~xr ~yb) in
            Ext_pst3.conformance t ~t_out:(List.length res)
              ~measured:(Query_stats.total st))
      in
      cell ~experiment:"R3" ~structure:(Ext_pst3.cost_model t) ~n ~b verdicts)
    [ Ext_pst3.Baseline; Ext_pst3.Cached ]

let stab_verdicts (type s) ~(stab : s -> int -> Ival.t list * Query_stats.t)
    ~(conf :
       s -> t_out:int -> measured:int -> Cost_model.Conformance.verdict) t =
  let qrng = Rng.create (seed + 2) in
  List.init 15 (fun _ ->
      let q = Rng.int qrng universe in
      let res, st = timeq (fun () -> stab t q) in
      conf t ~t_out:(List.length res) ~measured:(Query_stats.total st))

let r4_segtree () =
  let n = 8000 and b = 64 in
  let rng = Rng.create seed in
  let ivs = Workload.intervals rng Workload.Mixed_ivals ~n ~universe in
  List.map
    (fun mode ->
      let t = Ext_seg.create ~obs ~mode ~b ivs in
      let verdicts =
        stab_verdicts ~stab:Ext_seg.stab ~conf:Ext_seg.conformance t
      in
      cell ~experiment:"R4" ~structure:(Ext_seg.cost_model t) ~n ~b verdicts)
    [ Ext_seg.Naive; Ext_seg.Cached ]

let r5_inttree () =
  let n = 8000 and b = 64 in
  let rng = Rng.create seed in
  let ivs = Workload.intervals rng Workload.Mixed_ivals ~n ~universe in
  List.map
    (fun mode ->
      let t = Ext_int.create ~obs ~mode ~b ivs in
      let verdicts =
        stab_verdicts ~stab:Ext_int.stab ~conf:Ext_int.conformance t
      in
      cell ~experiment:"R5" ~structure:(Ext_int.cost_model t) ~n ~b verdicts)
    [ Ext_int.Naive; Ext_int.Cached ]

let r6_range2d () =
  let n = 8000 and b = 64 in
  let rng = Rng.create seed in
  let pts = Workload.points rng Workload.Uniform ~n ~universe in
  let t = Ext_range.create ~obs ~b pts in
  let qrng = Rng.create (seed + 3) in
  let verdicts =
    List.init 12 (fun _ ->
        let x1 = Rng.int qrng universe and y1 = Rng.int qrng universe in
        let x2 = min (universe - 1) (x1 + (universe / 40)) in
        let y2 = min (universe - 1) (y1 + (universe / 40)) in
        let res, st = timeq (fun () -> Ext_range.query t ~x1 ~x2 ~y1 ~y2) in
        Ext_range.conformance t ~t_out:(List.length res)
          ~measured:(Query_stats.total st))
  in
  [ cell ~experiment:"R6" ~structure:(Ext_range.cost_model t) ~n ~b verdicts ]

let r7_stabbing () =
  let n = 8000 and b = 64 in
  let rng = Rng.create seed in
  let ivs = Workload.intervals rng Workload.Mixed_ivals ~n ~universe in
  let t = Stabbing.create ~obs ~b ivs in
  let verdicts =
    stab_verdicts ~stab:Stabbing.stab ~conf:Stabbing.conformance t
  in
  [ cell ~experiment:"R7" ~structure:(Stabbing.cost_model t) ~n ~b verdicts ]

let r8_class_index () =
  let classes = 30 and n = 6000 and b = 64 in
  let h = Class_index.hierarchy () in
  let rng = Rng.create seed in
  for i = 1 to classes - 1 do
    let parent = if i = 1 then 0 else Rng.int rng i in
    Class_index.add_class h
      ~name:(Printf.sprintf "c%d" i)
      ~parent:(if parent = 0 then "object" else Printf.sprintf "c%d" parent)
  done;
  let objs =
    List.init n (fun oid ->
        {
          Class_index.cls = Printf.sprintf "c%d" (1 + Rng.int rng (classes - 1));
          key = Rng.int rng universe;
          oid;
        })
  in
  let t = Class_index.build ~obs h ~b objs in
  let qrng = Rng.create (seed + 4) in
  let verdicts =
    List.init 12 (fun _ ->
        let cls = Printf.sprintf "c%d" (1 + Rng.int qrng (classes - 1)) in
        let key_at_least = universe - Rng.int qrng (universe / 4) in
        let res, st = timeq (fun () -> Class_index.query t ~cls ~key_at_least) in
        Class_index.conformance t ~t_out:(List.length res)
          ~measured:(Query_stats.total st))
  in
  [ cell ~experiment:"R8" ~structure:(Class_index.cost_model t) ~n ~b verdicts ]

let r9_dynamic () =
  let n0 = 8000 and b = 64 in
  let rng = Rng.create seed in
  let pts = Workload.points rng Workload.Uniform ~n:n0 ~universe in
  let t = Dynamic_pst.create ~obs ~b pts in
  (* exercise the dynamic path before measuring: Thm 5.1's bound holds
     across updates, not only on a fresh bulk build *)
  List.iteri
    (fun i (p : Point.t) ->
      ignore
        (Dynamic_pst.insert t
           (Point.make ~x:p.x ~y:p.y ~id:(n0 + i))))
    (Workload.points rng Workload.Uniform ~n:(n0 / 16) ~universe);
  let n = Dynamic_pst.size t in
  let verdicts =
    List.map
      (fun (xl, yb) ->
        let res, st = timeq (fun () -> Dynamic_pst.query t ~xl ~yb) in
        Dynamic_pst.conformance t ~t_out:(List.length res)
          ~measured:(Query_stats.total st))
      (deep_corners 15)
  in
  [ cell ~experiment:"R9" ~structure:(Dynamic_pst.cost_model t) ~n ~b verdicts ]

(* D1: the durability tax. Journaled twin vs plain twin over the same
   update and query streams: the journal charges each dirtied page twice
   (journal record + in-place apply; the commit record piggybacks on the
   last journal write), so insert writes are bounded by 2x the plain
   run's (+1 when a checkpoint's superblock write lands), and the query
   path pays nothing at all — reads must be byte-identical. Tracked here
   so BENCH_regress.json catches any drift in the write amplification or
   a read sneaking onto the query path. *)
let d1_durability () =
  let n = 20000 and b = 64 and k = 40 in
  let entries = List.init n (fun i -> (i * 7, i)) in
  let plain = Btree.bulk_load_in ~b entries in
  let dur =
    Btree.bulk_load_in ~durability:(Pc_pagestore.Wal.create ()) ~b entries
  in
  let mk ~structure ~theorem samples ~worst ~within =
    let sorted = List.sort compare samples in
    let len = List.length samples in
    let nth p = List.nth sorted (min (len - 1) (p * len / 100)) in
    {
      Bench_gate.experiment = "D1";
      structure;
      theorem;
      n;
      b;
      queries = len;
      mean_ios =
        float_of_int (List.fold_left ( + ) 0 samples) /. float_of_int len;
      p50_ios = nth 50;
      p99_ios = nth 99;
      max_ios = List.fold_left max 0 samples;
      worst_ratio = worst;
      within;
      mean_us = 0.;
      p99_us = 0.;
    }
  in
  let rng = Rng.create (seed + 5) in
  (* update path: per-insert writes, journaled vs plain *)
  let worst = ref 0. and ok = ref true in
  let write_samples =
    List.init k (fun i ->
        let key = (n * 7) + (i * 11) and value = Rng.int rng universe in
        Pager.reset_stats (Btree.pager plain);
        Pager.reset_stats (Btree.pager dur);
        Btree.insert plain ~key ~value;
        Btree.insert dur ~key ~value;
        let pw = (Pager.stats (Btree.pager plain)).Io_stats.writes in
        let dw = (Pager.stats (Btree.pager dur)).Io_stats.writes in
        worst := max !worst (float_of_int dw /. float_of_int (max 1 (2 * pw)));
        if dw > (2 * pw) + 1 then ok := false;
        dw)
  in
  let amp =
    mk ~structure:"btree_journal" ~theorem:"<=2x writes" write_samples
      ~worst:!worst ~within:!ok
  in
  (* query path: reads must be byte-identical, writes zero *)
  let qworst = ref 0. and qok = ref true in
  let read_samples =
    List.init k (fun i ->
        let width = [| 10; 100; 1000 |].(i mod 3) in
        let lo = Rng.int rng (n * 7) in
        Pager.reset_stats (Btree.pager plain);
        Pager.reset_stats (Btree.pager dur);
        ignore (Btree.range plain ~lo ~hi:(lo + width));
        ignore (Btree.range dur ~lo ~hi:(lo + width));
        let ps = Pager.stats (Btree.pager plain)
        and ds = Pager.stats (Btree.pager dur) in
        qworst :=
          max !qworst
            (float_of_int ds.Io_stats.reads
            /. float_of_int (max 1 ps.Io_stats.reads));
        if ds.Io_stats.reads <> ps.Io_stats.reads || ds.Io_stats.writes <> 0
        then qok := false;
        ds.Io_stats.reads)
  in
  let qreads =
    mk ~structure:"btree_journal_q" ~theorem:"0 extra reads" read_samples
      ~worst:!qworst ~within:!qok
  in
  [ amp; qreads ]

let run_all () =
  List.concat
    [
      r1_btree ();
      r2_pst2 ();
      r3_pst3 ();
      r4_segtree ();
      r5_inttree ();
      r6_range2d ();
      r7_stabbing ();
      r8_class_index ();
      r9_dynamic ();
      d1_durability ();
    ]

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let print_table entries =
  Printf.printf "%-4s %-14s %-12s %8s %4s %7s %7s %5s %5s %7s %8s %s\n" "exp"
    "structure" "theorem" "n" "b" "mean" "p99" "max" "q" "worst" "mean_us" "ok";
  List.iter
    (fun (e : Bench_gate.entry) ->
      Printf.printf
        "%-4s %-14s %-12s %8d %4d %7.2f %7d %5d %5d %7.2f %8.1f %s\n"
        e.experiment e.structure e.theorem e.n e.b e.mean_ios e.p99_ios
        e.max_ios e.queries e.worst_ratio e.mean_us
        (if e.within then "yes" else "VIOLATION"))
    entries

let write_file path s =
  let oc = open_out path in
  output_string oc s;
  close_out oc

let () =
  let write = ref None
  and diff = ref None
  and prom = ref None
  and report = ref None
  and tolerance = ref 0.10 in
  let rec parse = function
    | [] -> ()
    | "--write" :: p :: rest -> write := Some p; parse rest
    | "--diff" :: p :: rest -> diff := Some p; parse rest
    | "--prom" :: p :: rest -> prom := Some p; parse rest
    | "--report" :: p :: rest -> report := Some p; parse rest
    | "--tolerance" :: v :: rest -> tolerance := float_of_string v; parse rest
    | a :: _ ->
        Printf.eprintf "regress: unknown argument %s\n" a;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv));
  let entries = run_all () in
  let current = { Bench_gate.seed; entries } in
  print_table entries;
  Format.printf "@\n%a" Cost_model.Conformance.pp_summary global;
  Option.iter (fun p -> write_file p (Bench_gate.to_json current)) !write;
  Option.iter
    (fun p -> write_file p (Cost_model.Conformance.report global))
    !report;
  Option.iter (fun p -> write_file p (Metrics.to_prometheus metrics)) !prom;
  match !diff with
  | None ->
      if not (Cost_model.Conformance.all_within global) then begin
        print_endline "conformance: VIOLATIONS (see table)";
        exit 1
      end
  | Some path -> (
      match Bench_gate.of_file path with
      | Error msg ->
          Printf.eprintf "regress: cannot load baseline %s: %s\n" path msg;
          exit 2
      | Ok baseline ->
          let r =
            Bench_gate.diff ~tolerance:!tolerance ~baseline ~current ()
          in
          Format.printf "@\n%a@?" Bench_gate.pp_report r;
          if not (Bench_gate.passed r) then exit 1)
