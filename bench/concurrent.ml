(* E18: aggregate query throughput across reader domains (DESIGN.md
   §14, EXPERIMENTS.md E18).

   One Shared_store, D reader domains, each running an independent
   seeded stream of key-range and 3-sided queries against the published
   snapshot for a fixed wall-clock slice; the cell reports aggregate
   queries/second and the speedup over the D=1 baseline. Every K-th
   answer is conformance-checked against a sequential scan of the same
   immutable point set — the store is read-only during timed cells, so
   any deviation is a real violation and the bench exits non-zero.

   A final mixed cell runs the same readers with one writer domain
   mutating the store throughout (inserts/deletes of a disjoint id
   range), reporting reader and writer throughput together — the
   readers-run-with-writer claim measured, not asserted. Mixed-cell
   answers shift under the writer's feet, so that cell reports
   throughput only.

   The speedup gate is conditional on the hardware: with fewer than 4
   cores available ([Domain.recommended_domain_count]), parallel
   speedup is physically impossible and the gate reports itself
   skipped; with 4+ cores, 4 domains must reach >= 2x the 1-domain
   baseline or the bench fails.

   Run with: dune exec bench/concurrent.exe -- [--fast] [--out FILE] *)

module Point = Pc_util.Point
module Rng = Pc_util.Rng
module Shared_store = Pc_conc.Shared_store

let fast = Array.exists (( = ) "--fast") Sys.argv

let out_file =
  let rec find = function
    | "--out" :: f :: _ -> f
    | _ :: tl -> find tl
    | [] -> "BENCH_concurrent.json"
  in
  find (Array.to_list Sys.argv)

let universe = 1 lsl 16

(* ------------------------------------------------------------------ *)
(* Query streams and the sequential oracle                            *)
(* ------------------------------------------------------------------ *)

type query = Qk of int * int | Q3 of int * int * int

let gen_query rng =
  let coord () = Rng.int rng universe in
  if Rng.bool rng then begin
    let lo = coord () in
    Qk (lo, lo + 512)
  end
  else begin
    let xl = coord () in
    Q3 (xl, xl + 512, universe / 2)
  end

let run_query store = function
  | Qk (lo, hi) -> List.length (Shared_store.krange store ~lo ~hi)
  | Q3 (xl, xr, yb) -> List.length (Shared_store.query3 store ~xl ~xr ~yb)

let oracle_answer pts = function
  | Qk (lo, hi) ->
      List.fold_left
        (fun a (p : Point.t) -> if lo <= p.x && p.x <= hi then a + 1 else a)
        0 pts
  | Q3 (xl, xr, yb) ->
      List.fold_left
        (fun a (p : Point.t) ->
          if xl <= p.x && p.x <= xr && p.y >= yb then a + 1 else a)
        0 pts

(* ------------------------------------------------------------------ *)
(* Timed cells                                                        *)
(* ------------------------------------------------------------------ *)

(* Each reader runs until [deadline], checking every [check_every]-th
   answer against the oracle; returns (queries, violations, checked). *)
let reader store pts ~seed ~deadline ~check_every =
  let rng = Rng.create seed in
  let ops = ref 0 and violations = ref 0 and checked = ref 0 in
  while Unix.gettimeofday () < deadline do
    for _ = 1 to 32 do
      let q = gen_query rng in
      let got = run_query store q in
      incr ops;
      if !ops mod check_every = 0 then begin
        incr checked;
        if got <> oracle_answer pts q then incr violations
      end
    done
  done;
  (!ops, !violations, !checked)

let read_cell store pts ~domains ~seconds ~check_every =
  let deadline = Unix.gettimeofday () +. seconds in
  let spawned =
    Array.init (domains - 1) (fun i ->
        Domain.spawn (fun () ->
            reader store pts ~seed:(100 + i) ~deadline ~check_every))
  in
  let own = reader store pts ~seed:99 ~deadline ~check_every in
  let all = own :: Array.to_list (Array.map Domain.join spawned) in
  let ops = List.fold_left (fun a (o, _, _) -> a + o) 0 all in
  let violations = List.fold_left (fun a (_, v, _) -> a + v) 0 all in
  let checked = List.fold_left (fun a (_, _, c) -> a + c) 0 all in
  (ops, violations, checked)

(* The mixed cell: readers keep querying while one writer inserts and
   deletes a disjoint id range; throughput-only (answers move). *)
let mixed_cell store ~domains ~seconds =
  let deadline = Unix.gettimeofday () +. seconds in
  let writer () =
    let rng = Rng.create 4242 in
    let wrote = ref 0 in
    let next = ref 0 in
    while Unix.gettimeofday () < deadline do
      for _ = 1 to 16 do
        let id = 50_000_000 + (!next mod 4096) in
        incr next;
        if Rng.int rng 3 = 0 then ignore (Shared_store.delete store id)
        else
          Shared_store.insert store
            (Point.make ~x:(Rng.int rng universe) ~y:(Rng.int rng universe)
               ~id);
        incr wrote
      done
    done;
    !wrote
  in
  let read_one seed =
    let rng = Rng.create seed in
    let ops = ref 0 in
    while Unix.gettimeofday () < deadline do
      for _ = 1 to 32 do
        ignore (run_query store (gen_query rng));
        incr ops
      done
    done;
    !ops
  in
  let wd = Domain.spawn writer in
  let readers =
    Array.init domains (fun i -> Domain.spawn (fun () -> read_one (200 + i)))
  in
  let writes = Domain.join wd in
  let reads = Array.fold_left (fun a d -> a + Domain.join d) 0 readers in
  (reads, writes)

(* ------------------------------------------------------------------ *)
(* Driver                                                             *)
(* ------------------------------------------------------------------ *)

let () =
  let n = if fast then 20_000 else 80_000 in
  let seconds = if fast then 0.5 else 2.0 in
  let check_every = 16 in
  let rng = Rng.create 1 in
  let pts =
    List.init n (fun id ->
        Point.make ~x:(Rng.int rng universe) ~y:(Rng.int rng universe) ~id)
  in
  let store = Shared_store.create ~b:16 ~checkpoint_every:1024 pts in
  let cores = Domain.recommended_domain_count () in
  Printf.printf
    "E18 concurrent query throughput: n=%d, %.1fs per cell, every %dth \
     answer oracle-checked, %d core(s) available\n\n"
    n seconds check_every cores;
  Printf.printf "%8s %12s %12s %9s %9s %11s\n" "domains" "queries" "qps"
    "speedup" "checked" "violations";
  let sweep = [ 1; 2; 4 ] in
  let base_qps = ref 0. in
  let total_violations = ref 0 in
  let cells =
    List.map
      (fun domains ->
        let ops, violations, checked =
          read_cell store pts ~domains ~seconds ~check_every
        in
        let qps = float_of_int ops /. seconds in
        if domains = 1 then base_qps := qps;
        total_violations := !total_violations + violations;
        let speedup = qps /. !base_qps in
        Printf.printf "%8d %12d %12.0f %8.2fx %9d %11d\n" domains ops qps
          speedup checked violations;
        (domains, ops, qps, speedup, checked, violations))
      sweep
  in
  let mixed_readers = 4 in
  let reads, writes = mixed_cell store ~domains:mixed_readers ~seconds in
  Printf.printf
    "\nmixed: %d readers + 1 writer for %.1fs -> %.0f reads/s alongside %.0f \
     writes/s (store v%d, %d checkpoint(s))\n"
    mixed_readers seconds
    (float_of_int reads /. seconds)
    (float_of_int writes /. seconds)
    (Shared_store.version store)
    (Shared_store.checkpoints store);
  Shared_store.check_invariants store;
  (* persist the cells *)
  let oc = open_out out_file in
  Printf.fprintf oc "{\n  \"experiment\": \"E18\",\n  \"n\": %d,\n" n;
  Printf.fprintf oc "  \"seconds_per_cell\": %g,\n  \"cores\": %d,\n" seconds
    cores;
  Printf.fprintf oc "  \"cells\": [\n";
  List.iteri
    (fun i (domains, ops, qps, speedup, checked, violations) ->
      Printf.fprintf oc
        "    {\"domains\": %d, \"queries\": %d, \"qps\": %.0f, \"speedup\": \
         %.3f, \"checked\": %d, \"violations\": %d}%s\n"
        domains ops qps speedup checked violations
        (if i = List.length cells - 1 then "" else ","))
    cells;
  Printf.fprintf oc "  ],\n";
  Printf.fprintf oc
    "  \"mixed\": {\"readers\": %d, \"reads_per_s\": %.0f, \"writes_per_s\": \
     %.0f}\n}\n"
    mixed_readers
    (float_of_int reads /. seconds)
    (float_of_int writes /. seconds);
  close_out oc;
  Printf.printf "wrote %s\n" out_file;
  (* gates: conformance always; speedup only where speedup is possible *)
  if !total_violations > 0 then begin
    Printf.printf "E18 FAILED: %d conformance violation(s)\n"
      !total_violations;
    exit 1
  end;
  match List.find_opt (fun (d, _, _, _, _, _) -> d = 4) cells with
  | Some (_, _, _, speedup, _, _) when cores >= 4 ->
      if speedup >= 2.0 then
        Printf.printf "gate: 4-domain speedup %.2fx >= 2x — pass\n" speedup
      else begin
        Printf.printf
          "E18 FAILED: 4-domain speedup %.2fx < 2x on %d cores\n" speedup
          cores;
        exit 1
      end
  | _ ->
      Printf.printf
        "gate: skipped — %d core(s) available, parallel speedup needs >= 4 \
         (throughput reported above)\n"
        cores
