(* Benchmark harness: regenerates every experiment of DESIGN.md §6.

   The paper (PODS'94) is an extended abstract whose results are theorems;
   each experiment below measures the corresponding complexity claim on
   the simulated disk — exact page I/Os and exact page counts — and the
   printed rows are recorded against the claims in EXPERIMENTS.md.
   Bechamel wall-clock micro-benchmarks close the run.

   Run with: dune exec bench/main.exe            (full sweep)
             dune exec bench/main.exe -- --fast  (reduced sizes) *)

open Pathcaching

let fast = Array.exists (( = ) "--fast") Sys.argv
let scale n = if fast then max 1000 (n / 8) else n
let universe = 1_000_000

let header title = Printf.printf "\n==== %s ====\n" title
let row fmt = Printf.printf fmt
let avg_f xs = List.fold_left ( +. ) 0. xs /. float_of_int (max 1 (List.length xs))
let avg xs = avg_f (List.map float_of_int xs)

(* Per-query I/O distribution summary: the paper's bounds are worst-case,
   so each query experiment reports tails (p50/p99/max), not only the
   mean that the table rows show. *)
let histo_row tag h =
  if Histogram.count h > 0 then
    row "  %-12s per-query io: %s\n" tag (Format.asprintf "%a" Histogram.pp h)

(* Worst measured/predicted ratio over the experiment's queries — the
   EXPERIMENTS.md conformance column (see lib/obs/cost_model.mli). *)
let conf_line summ =
  if Cost_model.Conformance.count summ > 0 then
    row "  conformance: %d queries checked, worst ratio %.2f%s\n"
      (Cost_model.Conformance.count summ)
      (Cost_model.Conformance.worst_ratio summ)
      (if Cost_model.Conformance.all_within summ then ""
       else "  ** VIOLATION **")

(* ------------------------------------------------------------------ *)
(* E1: 2-sided query I/O vs n (Lemma 3.1 vs [IKO])                    *)
(* ------------------------------------------------------------------ *)

(* Deep corners with small output isolate the search term: the paths run
   the full height while t stays small. *)
let deep_corners u k = List.init k (fun i -> (u - 3000 - (i * 100), i * 3))

let e1 () =
  header "E1 QUERY-2SIDED-VS-N: deep-corner query I/O (B=64)";
  row "%8s %6s | %8s %8s %8s %8s %8s\n" "n" "t~" "iko" "basic" "segmntd"
    "2level" "multi";
  let histos =
    List.map (fun v -> (v, Histogram.create ())) Ext_pst.all_variants
  in
  let summ = Cost_model.Conformance.summary () in
  List.iter
    (fun n ->
      let n = scale n in
      let rng = Rng.create 11 in
      let pts = Workload.points rng Workload.Uniform ~n ~universe in
      let corners = deep_corners universe 15 in
      let avg_t = ref 0 in
      let ios =
        List.map
          (fun v ->
            let t = Ext_pst.create ~variant:v ~b:64 pts in
            let h = List.assoc v histos in
            avg
              (List.map
                 (fun (xl, yb) ->
                   let res, st = Ext_pst.query t ~xl ~yb in
                   avg_t := List.length res;
                   let io = Query_stats.total st in
                   Histogram.add h io;
                   Cost_model.Conformance.record summ
                     (Ext_pst.conformance t ~t_out:(List.length res)
                        ~measured:io);
                   io)
                 corners))
          Ext_pst.all_variants
      in
      row "%8d %6d |" n !avg_t;
      List.iter (fun v -> row " %8.1f" v) ios;
      print_newline ())
    [ 4000; 16000; 64000; 256000 ];
  List.iter
    (fun (v, h) -> histo_row (Format.asprintf "%a" Ext_pst.pp_variant v) h)
    histos;
  conf_line summ

(* ------------------------------------------------------------------ *)
(* E2: storage ladder (Lemma 3.1, Thms 3.2 / 4.3 / 4.4)               *)
(* ------------------------------------------------------------------ *)

let e2 () =
  header "E2 STORAGE-LADDER: pages / (n/B) per variant (B=64)";
  let histo = Histogram.create () in
  let summ = Cost_model.Conformance.summary () in
  row "%8s | %8s %8s %8s %8s %8s\n" "n" "iko" "basic" "segmntd" "2level"
    "multi";
  List.iter
    (fun n ->
      let n = scale n in
      let rng = Rng.create 13 in
      let pts = Workload.points rng Workload.Uniform ~n ~universe in
      row "%8d |" n;
      List.iter
        (fun v ->
          let t = Ext_pst.create ~variant:v ~b:64 pts in
          (* the ladder trades storage for query I/O: record the same
             deep-corner distribution so the two sides line up *)
          List.iter
            (fun (xl, yb) ->
              let res, st = Ext_pst.query t ~xl ~yb in
              Histogram.add histo (Query_stats.total st);
              Cost_model.Conformance.record summ
                (Ext_pst.conformance t ~t_out:(List.length res)
                   ~measured:(Query_stats.total st)))
            (deep_corners universe 15);
          row " %8.2f"
            (float_of_int (Ext_pst.storage_pages t)
            /. float_of_int (max 1 (n / 64))))
        Ext_pst.all_variants;
      print_newline ())
    [ 4000; 16000; 64000; 256000 ];
  histo_row "all-variants" histo;
  conf_line summ

(* ------------------------------------------------------------------ *)
(* E3: output sensitivity at fixed n (the t/B term, Thm 4.3)          *)
(* ------------------------------------------------------------------ *)

let e3 () =
  header "E3 QUERY-2SIDED-VS-T: I/O vs output size (n=64000, B=64)";
  let n = scale 64000 in
  let rng = Rng.create 17 in
  let pts = Workload.points rng Workload.Uniform ~n ~universe in
  let two = Ext_pst.create ~variant:Ext_pst.Two_level ~b:64 pts in
  let iko = Ext_pst.create ~variant:Ext_pst.Iko ~b:64 pts in
  row "%10s %8s | %10s %8s %8s\n" "frac" "t" "ceil(t/B)" "2level" "iko";
  let h_two = Histogram.create () and h_iko = Histogram.create () in
  let summ = Cost_model.Conformance.summary () in
  List.iter
    (fun frac ->
      let xl, yb = Workload.corner_for_target_t pts ~frac in
      let res, st = Ext_pst.query two ~xl ~yb in
      let _, st_iko = Ext_pst.query iko ~xl ~yb in
      let t = List.length res in
      Histogram.add h_two (Query_stats.total st);
      Histogram.add h_iko (Query_stats.total st_iko);
      Cost_model.Conformance.record summ
        (Ext_pst.conformance two ~t_out:t ~measured:(Query_stats.total st));
      Cost_model.Conformance.record summ
        (Ext_pst.conformance iko ~t_out:t
           ~measured:(Query_stats.total st_iko));
      row "%10.3f %8d | %10d %8d %8d\n" frac t
        (Num_util.ceil_div t 64)
        (Query_stats.total st) (Query_stats.total st_iko))
    [ 0.001; 0.01; 0.05; 0.2; 0.5 ];
  histo_row "2level" h_two;
  histo_row "iko" h_iko;
  conf_line summ

(* ------------------------------------------------------------------ *)
(* E4: dynamic updates (Thm 5.1)                                      *)
(* ------------------------------------------------------------------ *)

let e4 () =
  header "E4 DYNAMIC-UPDATES: amortized update I/O and query I/O vs n (B=64)";
  let histo = Histogram.create () in
  let summ = Cost_model.Conformance.summary () in
  row "%8s | %10s %10s %10s %12s %8s\n" "n" "upd I/O" "qry I/O" "t~"
    "rebuilds g/s" "pages";
  List.iter
    (fun n ->
      let n = scale n in
      let rng = Rng.create 19 in
      let pts = Workload.points rng Workload.Uniform ~n ~universe in
      let t = Dynamic_pst.create ~b:64 pts in
      Dynamic_pst.reset_io_stats t;
      let nops = 3000 in
      let total = ref 0 in
      for i = 0 to nops - 1 do
        if Rng.int rng 2 = 0 then
          total :=
            !total
            + Dynamic_pst.insert t
                (Point.make ~x:(Rng.int rng universe) ~y:(Rng.int rng universe)
                   ~id:(n + i + 1))
        else begin
          match Dynamic_pst.delete t ~id:(Rng.int rng n) with
          | Some ios -> total := !total + ios
          | None -> ()
        end
      done;
      let q_ios, ts =
        List.split
          (List.map
             (fun (xl, yb) ->
               let res, st = Dynamic_pst.query t ~xl ~yb in
               Cost_model.Conformance.record summ
                 (Dynamic_pst.conformance t ~t_out:(List.length res)
                    ~measured:(Query_stats.total st));
               (Query_stats.total st, List.length res))
             (deep_corners universe 10))
      in
      List.iter (Histogram.add histo) q_ios;
      let g, s = Dynamic_pst.rebuilds t in
      row "%8d | %10.1f %10.1f %10.0f %8d/%-5d %8d\n" n
        (float_of_int !total /. float_of_int nops)
        (avg q_ios) (avg ts) g s
        (Dynamic_pst.storage_pages t))
    [ 4000; 16000; 64000; 256000 ];
  histo_row "dynamic" histo;
  conf_line summ

(* ------------------------------------------------------------------ *)
(* E5: external segment tree (§2, Thm 3.4)                            *)
(* ------------------------------------------------------------------ *)

(* Dyadic-sparse intervals: a few per scale, so cover-lists are non-empty
   but underfull at every level — Figure 3's regime. *)
let dyadic rng n u =
  List.init n (fun i ->
      let k = 2 + Rng.int rng (Num_util.ilog2 u - 4) in
      let len = max 1 (u lsr k) in
      let lo = Rng.int rng (u - len) in
      Ival.make ~lo ~hi:(lo + len) ~id:i)

let e5 () =
  header "E5 SEGTREE-STABBING: naive vs path-cached (B=64, dyadic intervals)";
  row "%8s %6s | %8s %8s | %8s %8s | %9s %9s\n" "n" "t~" "naive" "cached"
    "waste-n" "waste-c" "pages-n" "pages-c";
  List.iter
    (fun n ->
      let n = scale n in
      let rng = Rng.create 21 in
      let u = 1 lsl 22 in
      let ivs = dyadic rng n u in
      let naive = Ext_seg.create ~mode:Ext_seg.Naive ~b:64 ivs in
      let cached = Ext_seg.create ~mode:Ext_seg.Cached ~b:64 ivs in
      let qs = Workload.stab_queries rng ~k:40 ~universe:u in
      let stats t =
        let io = ref 0 and waste = ref 0 and tt = ref 0 in
        List.iter
          (fun q ->
            let res, st = Ext_seg.stab t q in
            io := !io + Query_stats.total st;
            waste := !waste + st.Query_stats.wasteful_reads;
            tt := !tt + List.length res)
          qs;
        let k = List.length qs in
        ( float_of_int !io /. float_of_int k,
          float_of_int !waste /. float_of_int k,
          !tt / k )
      in
      let io_n, w_n, t_n = stats naive in
      let io_c, w_c, _ = stats cached in
      row "%8d %6d | %8.1f %8.1f | %8.1f %8.1f | %9d %9d\n" n t_n io_n io_c w_n
        w_c
        (Ext_seg.storage_pages naive)
        (Ext_seg.storage_pages cached))
    [ 4000; 16000; 64000 ]

(* ------------------------------------------------------------------ *)
(* E6: external interval tree (Thm 3.5)                               *)
(* ------------------------------------------------------------------ *)

let e6 () =
  header "E6 INTTREE-STABBING: interval tree vs segment tree (B=64)";
  row "%8s %6s | %8s %8s | %9s %9s %9s\n" "n" "t~" "int-io" "seg-io"
    "int-pgs" "seg-pgs" "naive-pgs";
  List.iter
    (fun n ->
      let n = scale n in
      let rng = Rng.create 23 in
      let u = 1 lsl 22 in
      let ivs = dyadic rng n u in
      let it = Ext_int.create ~mode:Ext_int.Cached ~b:64 ivs in
      let itn = Ext_int.create ~mode:Ext_int.Naive ~b:64 ivs in
      let st_tree = Ext_seg.create ~mode:Ext_seg.Cached ~b:64 ivs in
      let qs = Workload.stab_queries rng ~k:40 ~universe:u in
      let int_io = ref 0 and seg_io = ref 0 and tt = ref 0 in
      List.iter
        (fun q ->
          let res, s1 = Ext_int.stab it q in
          let _, s2 = Ext_seg.stab st_tree q in
          int_io := !int_io + Query_stats.total s1;
          seg_io := !seg_io + Query_stats.total s2;
          tt := !tt + List.length res)
        qs;
      let k = List.length qs in
      row "%8d %6d | %8.1f %8.1f | %9d %9d %9d\n" n (!tt / k)
        (float_of_int !int_io /. float_of_int k)
        (float_of_int !seg_io /. float_of_int k)
        (Ext_int.storage_pages it)
        (Ext_seg.storage_pages st_tree)
        (Ext_int.storage_pages itn))
    [ 4000; 16000; 64000 ]

(* ------------------------------------------------------------------ *)
(* E7: 3-sided queries (Thm 3.3)                                      *)
(* ------------------------------------------------------------------ *)

let e7 () =
  header "E7 QUERY-3SIDED: baseline vs path-cached (B=64)";
  row "%8s | %6s %9s %9s | %6s %9s %9s | %9s %9s\n" "n" "t~" "base-edge"
    "cach-edge" "t~" "base-mid" "cach-mid" "pgs-base" "pgs-cach";
  List.iter
    (fun n ->
      let n = scale n in
      let rng = Rng.create 29 in
      let pts = Workload.points rng Workload.Uniform ~n ~universe in
      let base = Ext_pst3.create ~mode:Ext_pst3.Baseline ~b:64 pts in
      let cached = Ext_pst3.create ~mode:Ext_pst3.Cached ~b:64 pts in
      (* edge-anchored slabs behave like deep 2-sided corners: the right
         boundary is the universe edge, so the split is at the root and
         path caching pays off exactly as in Lemma 3.1 *)
      let edge_queries =
        List.init 15 (fun i -> (universe - 3000 - (i * 100), universe, i * 3))
      in
      (* mid thin slabs keep both boundaries together deep into the tree:
         the worst case for our documented O(d_split) deviation *)
      let w = max 100 (25_000_000 / n) in
      let mid_queries =
        List.init 15 (fun i ->
            ((universe / 2) - w, (universe / 2) + w + i, i * 3))
      in
      let run t queries =
        let io = ref 0 and tt = ref 0 in
        List.iter
          (fun (xl, xr, yb) ->
            let res, st = Ext_pst3.query t ~xl ~xr ~yb in
            io := !io + Query_stats.total st;
            tt := !tt + List.length res)
          queries;
        ( float_of_int !io /. float_of_int (List.length queries),
          !tt / List.length queries )
      in
      let eb, te = run base edge_queries in
      let ec, _ = run cached edge_queries in
      let mb, tm = run base mid_queries in
      let mc, _ = run cached mid_queries in
      row "%8d | %6d %9.1f %9.1f | %6d %9.1f %9.1f | %9d %9d\n" n te eb ec tm
        mb mc
        (Ext_pst3.storage_pages base)
        (Ext_pst3.storage_pages cached))
    [ 4000; 16000; 64000; 256000 ]

(* ------------------------------------------------------------------ *)
(* E8: page-size sweep and wasteful-I/O decomposition (Figs. 2-3)     *)
(* ------------------------------------------------------------------ *)

let e8 () =
  header "E8 B-SWEEP: deep-corner query I/O decomposition (n=64000)";
  let n = scale 64000 in
  row "%5s %-10s | %7s %6s %6s %6s %7s\n" "B" "variant" "total" "skel"
    "data" "cache" "waste";
  List.iter
    (fun b ->
      let rng = Rng.create 31 in
      let pts = Workload.points rng Workload.Uniform ~n ~universe in
      List.iter
        (fun v ->
          let t = Ext_pst.create ~variant:v ~b pts in
          let acc = Query_stats.create () in
          let corners = deep_corners universe 15 in
          List.iter
            (fun (xl, yb) ->
              let _, st = Ext_pst.query t ~xl ~yb in
              Query_stats.add ~into:acc st)
            corners;
          let k = float_of_int (List.length corners) in
          row "%5d %-10s | %7.1f %6.1f %6.1f %6.1f %7.1f\n" b
            (Format.asprintf "%a" Ext_pst.pp_variant v)
            (float_of_int (Query_stats.total acc) /. k)
            (float_of_int acc.Query_stats.skeletal_reads /. k)
            (float_of_int acc.Query_stats.data_reads /. k)
            (float_of_int acc.Query_stats.cache_reads /. k)
            (float_of_int acc.Query_stats.wasteful_reads /. k))
        [ Ext_pst.Iko; Ext_pst.Segmented; Ext_pst.Two_level ])
    [ 8; 16; 64; 256 ]

(* ------------------------------------------------------------------ *)
(* E9: interval management (§1 motivation, [KRV] reduction)           *)
(* ------------------------------------------------------------------ *)

let e9 () =
  header "E9 INTERVAL-MGMT: stabbing store vs B+-tree candidate scan (B=64)";
  row "%8s %6s | %10s %12s\n" "n" "t~" "stab-io" "btree-io";
  List.iter
    (fun n ->
      let n = scale n in
      let rng = Rng.create 37 in
      let ivs = Workload.intervals rng Workload.Short_ivals ~n ~universe in
      let store = Stabbing.create ~b:64 ivs in
      let entries =
        List.map (fun iv -> (Ival.lo iv, Ival.id iv)) ivs |> List.sort compare
      in
      let bt = Btree.bulk_load (Pager.create ~page_capacity:64 ()) entries in
      let qs = Workload.stab_queries rng ~k:25 ~universe in
      let stab_io = ref 0 and bt_io = ref 0 and tt = ref 0 in
      List.iter
        (fun q ->
          let res, st = Stabbing.stab store q in
          stab_io := !stab_io + Query_stats.total st;
          tt := !tt + List.length res;
          (* B+-tree on lo: scan every interval starting before q *)
          Pager.reset_stats (Btree.pager bt);
          ignore (Btree.range bt ~lo:min_int ~hi:q);
          bt_io := !bt_io + Io_stats.total (Pager.stats (Btree.pager bt)))
        qs;
      let k = List.length qs in
      row "%8d %6d | %10.1f %12.1f\n" n (!tt / k)
        (float_of_int !stab_io /. float_of_int k)
        (float_of_int !bt_io /. float_of_int k))
    [ 4000; 16000; 64000 ]

(* ------------------------------------------------------------------ *)
(* E10: buffer-pool sensitivity                                       *)
(* ------------------------------------------------------------------ *)

let e10 () =
  header "E10 BUFFERPOOL: LRU size vs disk reads (2-level, n=64000, B=64)";
  let n = scale 64000 in
  let rng = Rng.create 41 in
  let pts = Workload.points rng Workload.Uniform ~n ~universe in
  let queries = Workload.two_sided_corners rng ~k:60 ~universe in
  row "%10s | %10s %10s %8s\n" "cache-pgs" "disk-rds" "hits" "hit%";
  List.iter
    (fun cache ->
      let t =
        Ext_pst.create ~cache_capacity:cache ~variant:Ext_pst.Two_level ~b:64
          pts
      in
      Ext_pst.reset_io_stats t;
      List.iter (fun (xl, yb) -> ignore (Ext_pst.query t ~xl ~yb)) queries;
      let st = Ext_pst.io_stats t in
      let total = st.Io_stats.reads + st.Io_stats.cache_hits in
      row "%10d | %10d %10d %7.1f%%\n" cache st.Io_stats.reads
        st.Io_stats.cache_hits
        (100.
        *. float_of_int st.Io_stats.cache_hits
        /. float_of_int (max 1 total)))
    [ 0; 16; 64; 256; 1024 ]

(* ------------------------------------------------------------------ *)
(* E11: general 4-sided queries (Figure 1's last class; extension)    *)
(* ------------------------------------------------------------------ *)

let e11 () =
  header "E11 RANGE-2D: external range tree, general 4-sided queries (B=64)";
  row "%8s %6s | %8s %10s | %9s %12s\n" "n" "t~" "io" "bound*" "pages"
    "pages/(n/B)";
  List.iter
    (fun n ->
      let n = scale n in
      let rng = Rng.create 43 in
      let pts = Workload.points rng Workload.Uniform ~n ~universe in
      let t = Ext_range.create ~b:64 pts in
      let io = ref 0 and tt = ref 0 in
      let k = 20 in
      for _ = 1 to k do
        let x1 = Rng.int rng 900_000 and y1 = Rng.int rng 900_000 in
        let res, st =
          Ext_range.query t ~x1 ~x2:(x1 + 50_000) ~y1 ~y2:(y1 + 50_000)
        in
        io := !io + Query_stats.total st;
        tt := !tt + List.length res
      done;
      let logs =
        Num_util.ceil_log2 (max 2 n) * Num_util.ceil_log ~base:64 (max 2 n)
      in
      row "%8d %6d | %8.1f %10d | %9d %12.2f\n" n (!tt / k)
        (float_of_int !io /. float_of_int k)
        (logs + Num_util.ceil_div (!tt / k) 64)
        (Ext_range.storage_pages t)
        (float_of_int (Ext_range.storage_pages t) /. float_of_int (n / 64)))
    [ 4000; 16000; 64000; 256000 ];
  row "  (*bound = log2 n * log_B n + t/B, the structure's own claim)\n"

(* ------------------------------------------------------------------ *)
(* E12: dynamization ablation — §5 buffers vs Bentley-Saxe ladder     *)
(* ------------------------------------------------------------------ *)

(* The paper's bespoke dynamic structure (update buffers inside the
   static layout, Theorem 5.1) against the generic logarithmic method
   over the static two-level structure: same point sets, same query and
   update streams. The ladder multiplies query cost by its live levels
   and pays rebuild I/O on inserts; the bespoke structure pays one
   buffer-page rewrite per update. *)
module Ladder_static = struct
  type t = Ext_pst.t
  type elt = Point.t
  type query = int * int
  type answer = Point.t

  let build pts = Ext_pst.create ~variant:Ext_pst.Two_level ~b:64 pts
  let query t (xl, yb) = Ext_pst.query t ~xl ~yb
  let id (p : Point.t) = p.id
  let elt_id (p : Point.t) = p.id
  let storage_pages = Ext_pst.storage_pages
  let destroy _ = ()
end

module Pst_ladder = Logmethod.Make (Ladder_static)

let e12 () =
  header
    "E12 DYNAMIZATION: bespoke Section-5 buffers vs Bentley-Saxe ladder (B=64)";
  row "%8s | %9s %9s | %9s %9s | %9s %9s\n" "n" "upd-s/b" "upd-s/l"
    "qry-io/b" "qry-io/l" "pages-b" "pages-l";
  List.iter
    (fun n ->
      let n = scale n in
      let rng = Rng.create 53 in
      let pts = Workload.points rng Workload.Uniform ~n ~universe in
      let bespoke = Dynamic_pst.create ~b:64 pts in
      let ladder = Pst_ladder.create pts in
      let nops = 1000 in
      let time f =
        let t0 = Sys.time () in
        f ();
        (Sys.time () -. t0) /. float_of_int nops *. 1e6
      in
      let upd_b =
        time (fun () ->
            for i = 0 to nops - 1 do
              ignore
                (Dynamic_pst.insert bespoke
                   (Point.make ~x:(Rng.int rng universe)
                      ~y:(Rng.int rng universe) ~id:(n + i)))
            done)
      in
      let upd_l =
        time (fun () ->
            for i = 0 to nops - 1 do
              Pst_ladder.insert ladder
                (Point.make ~x:(Rng.int rng universe) ~y:(Rng.int rng universe)
                   ~id:(n + nops + i))
            done)
      in
      let corners = deep_corners universe 10 in
      let q_b =
        avg
          (List.map
             (fun (xl, yb) ->
               Query_stats.total (snd (Dynamic_pst.query bespoke ~xl ~yb)))
             corners)
      in
      let q_l =
        avg
          (List.map
             (fun (xl, yb) ->
               Query_stats.total (snd (Pst_ladder.query ladder (xl, yb))))
             corners)
      in
      row "%8d | %8.1fu %8.1fu | %9.1f %9.1f | %9d %9d\n" n upd_b upd_l q_b
        q_l
        (Dynamic_pst.storage_pages bespoke)
        (Pst_ladder.storage_pages ladder))
    [ 4000; 16000; 64000 ];
  row "  (upd-s: microseconds CPU per insert; qry-io: page reads per query)\n"

(* ------------------------------------------------------------------ *)
(* Bechamel wall-clock micro-benchmarks                               *)
(* ------------------------------------------------------------------ *)

let bechamel_suite () =
  header "WALL-CLOCK (Bechamel, ns/query estimated by OLS)";
  let open Bechamel in
  let n = scale 64000 in
  let rng = Rng.create 43 in
  let pts = Workload.points rng Workload.Uniform ~n ~universe in
  let ivs = dyadic rng (scale 16000) (1 lsl 22) in
  let trees =
    List.map
      (fun v -> (v, Ext_pst.create ~variant:v ~b:64 pts))
      Ext_pst.all_variants
  in
  let seg = Ext_seg.create ~mode:Ext_seg.Cached ~b:64 ivs in
  let it = Ext_int.create ~mode:Ext_int.Cached ~b:64 ivs in
  let p3 = Ext_pst3.create ~mode:Ext_pst3.Cached ~b:64 pts in
  let bt =
    Btree.bulk_load
      (Pager.create ~page_capacity:64 ())
      (List.init n (fun i -> (i, i)))
  in
  let q_rng = Rng.create 47 in
  let tests =
    List.map
      (fun (v, t) ->
        Test.make
          ~name:(Format.asprintf "2sided/%a" Ext_pst.pp_variant v)
          (Staged.stage (fun () ->
               ignore
                 (Ext_pst.query t ~xl:(universe - 5000)
                    ~yb:(Rng.int q_rng 100)))))
      trees
    @ [
        Test.make ~name:"segtree/stab"
          (Staged.stage (fun () ->
               ignore (Ext_seg.stab seg (Rng.int q_rng (1 lsl 22)))));
        Test.make ~name:"inttree/stab"
          (Staged.stage (fun () ->
               ignore (Ext_int.stab it (Rng.int q_rng (1 lsl 22)))));
        Test.make ~name:"3sided/cached"
          (Staged.stage (fun () ->
               ignore
                 (Ext_pst3.query p3
                    ~xl:((universe / 2) - 1500)
                    ~xr:((universe / 2) + 1500)
                    ~yb:(Rng.int q_rng 100))));
        Test.make ~name:"btree/range100"
          (Staged.stage (fun () ->
               let lo = Rng.int q_rng (n - 200) in
               ignore (Btree.range bt ~lo ~hi:(lo + 100))));
      ]
  in
  let test = Test.make_grouped ~name:"pathcaching" tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000
      ~quota:(Time.second (if fast then 0.25 else 0.5))
      ~kde:None ()
  in
  let raw = Benchmark.all cfg [ instance ] test in
  let results = Analyze.all ols instance raw in
  let rows = Hashtbl.fold (fun name ols acc -> (name, ols) :: acc) results [] in
  List.sort (fun (a, _) (b, _) -> compare a b) rows
  |> List.iter (fun (name, ols) ->
         match Analyze.OLS.estimates ols with
         | Some (est :: _) -> row "%-40s %12.0f ns/run\n" name est
         | _ -> row "%-40s %12s\n" name "n/a")

let () =
  Printf.printf "Path Caching (PODS'94) — experiment harness%s\n"
    (if fast then " [--fast]" else "");
  e1 ();
  e2 ();
  e3 ();
  e4 ();
  e5 ();
  e6 ();
  e7 ();
  e8 ();
  e9 ();
  e10 ();
  e11 ();
  e12 ();
  bechamel_suite ();
  Printf.printf "\nAll experiments complete. See EXPERIMENTS.md for the\n";
  Printf.printf "paper-claim vs measured ledger.\n"
